//! The worker pool: parked OS workers, a shared task deque, scoped task
//! submission, and the deterministic chunked parallel map.
//!
//! ## Concurrency protocol
//!
//! All scheduling state lives behind one mutex (`Shared::queue`) and one
//! condvar (`Shared::available`). Tasks are pushed to the back of the
//! deque and popped from the front by whichever participant gets there
//! first — workers and installing callers alike — so load balance emerges
//! from stealing chunk-granularity tasks rather than from static
//! assignment. The condvar is notified on two events only: a push (new
//! work) and a scope's pending count reaching zero (an installer may be
//! waiting). Both notifications happen while the queue mutex is held,
//! pairing with the waiters' check-then-wait under the same lock, so no
//! wakeup can be lost.
//!
//! ## Soundness of scoped tasks
//!
//! [`Scope::spawn`] erases the closure's `'scope` lifetime (a `Box<dyn
//! FnOnce + 'scope>` is transmuted to `'static` so it can sit in the
//! process-wide deque). This is sound for the same reason
//! `std::thread::scope` is: [`Runtime::install`] does not return — not
//! even by unwinding — until the scope's pending count has dropped to
//! zero, and the count is only decremented *after* a task has finished
//! running (or has been consumed by a panic). Every borrow a task holds is
//! therefore live for as long as the task can possibly execute. Task
//! panics are caught, stashed on the scope, and re-raised from `install`
//! on the installing thread after the remaining tasks drained.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use crate::obs;
use crate::sync::{PoisonTolerantCondvar, PoisonTolerantMutex};

/// Registry cells for pool activity. One set per process (every `Runtime`
/// feeds the same totals): tasks spawned onto the deque, how many of those
/// a parked worker stole versus the installing caller draining its own
/// scope, and how many `map_chunks` calls bypassed the pool entirely.
struct PoolMetrics {
    tasks_spawned: obs::Counter,
    tasks_stolen_worker: obs::Counter,
    tasks_run_caller: obs::Counter,
    maps_inline: obs::Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        tasks_spawned: obs::counter("pool.tasks_spawned"),
        tasks_stolen_worker: obs::counter("pool.tasks_stolen_worker"),
        tasks_run_caller: obs::counter("pool.tasks_run_caller"),
        maps_inline: obs::counter("pool.maps_inline"),
    })
}

/// A lifetime-erased task. Constructed only by [`Scope::spawn`], which
/// guarantees (via [`Runtime::install`]) that the closure's real borrows
/// outlive its execution.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// One queued task plus the scope it belongs to.
struct QueuedTask {
    run: Task,
    state: Arc<ScopeState>,
}

/// Completion state of one `install` call.
#[derive(Default)]
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: AtomicUsize,
    /// First panic payload raised by a task of this scope.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// The work deque. Chunk-granularity tasks; push back, steal front.
    queue: Mutex<VecDeque<QueuedTask>>,
    /// Signalled on push and on scope completion (see module docs).
    available: Condvar,
    /// Set by `Drop`; workers exit at the next wakeup.
    shutdown: AtomicBool,
}

impl Shared {
    /// Runs one task: execute, stash a panic if any, then decrement the
    /// owning scope's pending count — notifying under the queue lock when
    /// the scope completed so a waiting installer wakes up.
    fn run_task(&self, task: QueuedTask) {
        let QueuedTask { run, state } = task;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(run)) {
            let mut slot = state.panic.plock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.queue.plock();
            self.available.notify_all();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let task = {
            let mut queue = shared.queue.plock();
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                match queue.pop_front() {
                    Some(t) => break t,
                    None => queue = shared.available.pwait(queue),
                }
            }
        };
        pool_metrics().tasks_stolen_worker.incr();
        shared.run_task(task);
    }
}

/// A persistent worker pool. See the [crate docs](crate) for the design.
///
/// `Runtime::new(t)` spawns `t − 1` parked OS workers; the thread calling
/// [`Runtime::install`] or [`Runtime::map_chunks`] is the remaining
/// participant, so concurrency is exactly `t` and the machine is never
/// oversubscribed. Dropping the pool joins the workers (pending scopes
/// must have completed first, which `install`'s blocking API guarantees
/// for well-formed use).
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// A pool with `threads` total participants (`threads − 1` OS workers;
    /// the installing caller is the last one). `threads == 1` is valid and
    /// makes every API run inline on the caller.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("twoview-runtime-{i}"))
                    .spawn(move || worker_loop(shared))
                    // lint: allow(panic_hygiene) — thread spawn fails only on OS resource exhaustion; pool construction cannot proceed
                    .expect("spawn pool worker")
            })
            .collect();
        Runtime { shared, workers }
    }

    /// Total participants: parked workers plus the installing caller.
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f` with a [`Scope`] on which borrowed tasks can be spawned,
    /// participates in draining the deque, and returns once every task of
    /// the scope has completed. Panics from tasks (or from `f` itself) are
    /// re-raised here after the scope fully drained, mirroring
    /// `std::thread::scope` semantics.
    pub fn install<'env, F, T>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let scope = Scope {
            runtime: self,
            state: Arc::new(ScopeState::default()),
            scope: PhantomData,
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Tasks may borrow from `f`'s environment: drain-and-wait BEFORE
        // propagating any panic, or the borrows would dangle mid-unwind.
        self.participate_until_done(&scope.state);
        let task_panic = scope.state.panic.plock().take();
        match (result, task_panic) {
            (Err(payload), _) => resume_unwind(payload),
            (_, Some(payload)) => resume_unwind(payload),
            (Ok(value), None) => value,
        }
    }

    /// Caller-participation loop: steal queued tasks (any scope's — running
    /// a foreign task is always sound because *its* installer is blocked
    /// just like we are) until this scope's pending count reaches zero.
    fn participate_until_done(&self, state: &ScopeState) {
        loop {
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let task = self.shared.queue.plock().pop_front();
            match task {
                Some(t) => {
                    pool_metrics().tasks_run_caller.incr();
                    self.shared.run_task(t);
                }
                None => {
                    let queue = self.shared.queue.plock();
                    if state.pending.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    if queue.is_empty() {
                        // All of this scope's tasks are claimed and running;
                        // completion (or a nested spawn) will notify.
                        drop(self.shared.available.pwait(queue));
                    }
                }
            }
        }
    }

    /// Deterministic parallel map over consecutive `chunk_size`-element
    /// chunks of `items`: `f(chunk_index, chunk)` runs on up to `threads`
    /// participants, chunks are claimed dynamically in index order, and
    /// the results come back **in chunk order regardless of scheduling** —
    /// the ordered-reduction guarantee every bit-identical-across-threads
    /// consumer builds on.
    ///
    /// `threads` beyond the pool size spawn extra participant tasks that
    /// queue behind the real workers (the full parallel machinery runs,
    /// actual concurrency is bounded by the pool) — deliberately not
    /// clamped, so differential tests exercise the parallel path on any
    /// machine. With `threads == 1` (or a single chunk) the map runs
    /// inline with no pool traffic at all, so a `Some(1)` thread config
    /// costs nothing.
    pub fn map_chunks<T, R, F>(
        &self,
        threads: usize,
        items: &[T],
        chunk_size: usize,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = items.len().div_ceil(chunk_size);
        let threads = threads.max(1);
        if threads == 1 || n_chunks <= 1 {
            pool_metrics().maps_inline.incr();
            return items
                .chunks(chunk_size)
                .enumerate()
                .map(|(i, c)| f(i, c))
                .collect();
        }

        let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n_chunks);
        out.resize_with(n_chunks, MaybeUninit::uninit);
        let slots = SlotWriter {
            base: out.as_mut_ptr(),
        };
        // Per-slot initialisation flags, so a panicking chunk does not
        // leak the results the other chunks already produced: the store
        // directly follows the write with nothing panicking in between,
        // making "flagged" and "initialised" equivalent.
        let written: Vec<AtomicBool> = (0..n_chunks).map(|_| AtomicBool::new(false)).collect();
        let next = AtomicUsize::new(0);
        let participant = &|| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_chunks {
                break;
            }
            let lo = i * chunk_size;
            let hi = (lo + chunk_size).min(items.len());
            let value = f(i, &items[lo..hi]);
            // SAFETY: disjoint slots — chunk `i` is claimed exactly
            // once, and `install` returns only after every participant
            // finished, so the slot array outlives this write.
            unsafe { slots.write(i, value) };
            written[i].store(true, Ordering::Release);
        };
        let run = catch_unwind(AssertUnwindSafe(|| {
            self.install(|scope| {
                for _ in 1..threads {
                    scope.spawn(participant);
                }
                participant();
            });
        }));
        if let Err(payload) = run {
            for (i, flag) in written.iter().enumerate() {
                if flag.load(Ordering::Acquire) {
                    // SAFETY: `install` has drained the scope, so no
                    // participant can still touch the slots; this flagged
                    // slot was fully written (Release/Acquire pair) and
                    // is dropped exactly once.
                    unsafe { (*slots.base.add(i)).assume_init_drop() };
                }
            }
            resume_unwind(payload);
        }

        let mut out = ManuallyDrop::new(out);
        // SAFETY: every chunk index was claimed (the counter only stops
        // handing out indices past `n_chunks`) and written before its
        // participant exited, so all `n_chunks` slots are initialised;
        // `MaybeUninit<R>` and `R` share layout.
        unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<R>(), n_chunks, out.capacity()) }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        {
            let _guard = self.shared.queue.plock();
            self.shared.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads())
            .finish()
    }
}

/// Base pointer to the output slots of one `map_chunks` call. Participants
/// write disjoint indices, so sharing the raw pointer across threads is
/// sound; `R: Send` is required because values produced on one thread are
/// collected (and dropped) on the installer's.
struct SlotWriter<R> {
    base: *mut MaybeUninit<R>,
}

impl<R> SlotWriter<R> {
    /// Writes slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and claimed by exactly one participant, and
    /// the slots must stay alive until all participants finished.
    unsafe fn write(&self, i: usize, value: R) {
        // SAFETY: forwarded contract — the caller guarantees `i` is in
        // bounds, uniquely claimed, and that the slots are still alive.
        unsafe { (*self.base.add(i)).write(value) };
    }
}

// SAFETY: the pointer targets a slot array owned by the installer,
// which outlives every participant; moving the writer between threads
// moves only the pointer, and `R: Send` covers the values written.
unsafe impl<R: Send> Send for SlotWriter<R> {}
// SAFETY: concurrent `write` calls touch disjoint slots (each index is
// claimed by exactly one participant), so shared use is race-free.
unsafe impl<R: Send> Sync for SlotWriter<R> {}

/// A scope handed to [`Runtime::install`]'s closure. Tasks spawned on it
/// may borrow anything that outlives the `install` call (`'env`), exactly
/// like `std::thread::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    runtime: &'scope Runtime,
    state: Arc<ScopeState>,
    /// Invariance over `'scope` (same device as `std::thread::Scope`): a
    /// scope must not be coercible to one with a shorter task lifetime.
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on the pool. The task may borrow from the environment
    /// of the `install` call; it is guaranteed to have finished by the
    /// time `install` returns. Tasks may themselves spawn further tasks on
    /// the same scope.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: lifetime erasure only; `install` keeps every `'scope`
        // borrow alive until the task has run (see module docs).
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(task)
        };
        pool_metrics().tasks_spawned.incr();
        self.state.pending.fetch_add(1, Ordering::Release);
        let mut queue = self.runtime.shared.queue.plock();
        queue.push_back(QueuedTask {
            run: task,
            state: Arc::clone(&self.state),
        });
        self.runtime.shared.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn install_runs_all_tasks_with_borrows() {
        let rt = Runtime::new(4);
        let counter = AtomicUsize::new(0);
        let data: Vec<usize> = (0..100).collect();
        rt.install(|scope| {
            for chunk in data.chunks(7) {
                scope.spawn(|| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (0..100).sum::<usize>());
    }

    #[test]
    fn map_chunks_is_ordered_and_complete() {
        let rt = Runtime::new(3);
        let items: Vec<u64> = (0..1000).collect();
        for (threads, chunk) in [(1, 16), (2, 1), (3, 17), (8, 999), (3, 1000)] {
            let got = rt.map_chunks(threads, &items, chunk, |ci, vals| {
                (ci, vals.iter().sum::<u64>())
            });
            let want: Vec<(usize, u64)> = items
                .chunks(chunk)
                .enumerate()
                .map(|(ci, vals)| (ci, vals.iter().sum::<u64>()))
                .collect();
            assert_eq!(got, want, "threads={threads} chunk={chunk}");
        }
    }

    #[test]
    fn map_chunks_results_identical_across_thread_counts() {
        let rt = Runtime::new(4);
        let items: Vec<u64> = (0..5000).map(|i| i * 17 % 251).collect();
        let fold = |c: &[u64]| c.iter().fold(1u64, |a, &b| a.wrapping_mul(b | 1));
        let base = rt.map_chunks(1, &items, 64, |_, c| fold(c));
        for threads in [2, 3, 4, 16] {
            let other = rt.map_chunks(threads, &items, 64, |_, c| fold(c));
            assert_eq!(base, other, "threads={threads}");
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let rt = Runtime::new(1);
        assert_eq!(rt.threads(), 1);
        let got = rt.map_chunks(1, &[1, 2, 3], 2, |_, c| c.len());
        assert_eq!(got, vec![2, 1]);
        let mut hits = 0;
        rt.install(|scope| {
            scope.spawn(|| {}); // drained by the caller itself
            hits += 1;
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn nested_spawns_complete() {
        let rt = Runtime::new(2);
        let counter = AtomicUsize::new(0);
        rt.install(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let rt = Runtime::new(3);
        let finished = Arc::new(AtomicUsize::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.install(|scope| {
                let finished = Arc::clone(&finished);
                scope.spawn(move || {
                    finished.fetch_add(1, Ordering::Relaxed);
                });
                scope.spawn(|| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // The sibling task must have run (or been drained) regardless.
        assert_eq!(finished.load(Ordering::Relaxed), 1);
        // The pool survives a panicked scope.
        let ok = rt.map_chunks(3, &[1u64, 2, 3, 4], 1, |_, c| c[0] * 2);
        assert_eq!(ok, vec![2, 4, 6, 8]);
    }

    #[test]
    fn map_chunks_panic_propagates() {
        let rt = Runtime::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.map_chunks(2, &[0usize, 1, 2, 3], 1, |_, c| {
                if c[0] == 2 {
                    panic!("chunk panic");
                }
                c[0]
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn map_chunks_panic_drops_completed_results() {
        struct Guard(Arc<AtomicUsize>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let rt = Runtime::new(2);
        let created = Arc::new(AtomicUsize::new(0));
        let dropped = Arc::new(AtomicUsize::new(0));
        let items: Vec<usize> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.map_chunks(2, &items, 1, |_, c| {
                if c[0] == 40 {
                    panic!("chunk panic");
                }
                created.fetch_add(1, Ordering::Relaxed);
                Guard(Arc::clone(&dropped))
            })
        }));
        assert!(result.is_err());
        // Every completed chunk's result must have been reclaimed by the
        // unwind path — no leaks.
        assert_eq!(
            created.load(Ordering::Relaxed),
            dropped.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn concurrent_scopes_from_multiple_threads() {
        let rt = Arc::new(Runtime::new(4));
        let total = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rt = Arc::clone(&rt);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    let vals: Vec<u64> = (0..200).collect();
                    let sums = rt.map_chunks(4, &vals, 13, |_, c| c.iter().sum::<u64>());
                    total.fetch_add(sums.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * (0..200).sum::<u64>());
    }

    #[test]
    fn empty_map() {
        let rt = Runtime::new(2);
        let got: Vec<usize> = rt.map_chunks(2, &[] as &[u8], 4, |_, c| c.len());
        assert!(got.is_empty());
    }
}
