//! Priority-aware job queue: the serving layer above the worker pool.
//!
//! The [`pool`](crate::pool) underneath parallelises *one* computation;
//! this module schedules *many* computations — translator fits, table
//! evaluations, translation queries — submitted concurrently from any
//! number of threads. Design:
//!
//! * **two priority classes** ([`Priority::Interactive`] and
//!   [`Priority::Batch`]): an executor always serves the interactive lane
//!   first, and each lane is strictly FIFO, so a latency-sensitive query
//!   never queues behind a backlog of batch fits while batch work keeps
//!   its submission order;
//! * **cooperative cancellation** ([`CancellationToken`]): jobs receive a
//!   [`JobCtx`] and are expected to call [`JobCtx::checkpoint`] at their
//!   natural safe points (an iteration boundary, a candidate block). A
//!   cancelled job returns [`JobError::Cancelled`] — never a partial
//!   result — so every *completed* job is bit-identical to a serial run;
//! * **observable handles** ([`JobHandle`]): status, a monotone progress
//!   counter, queue-wait/run timings, and the global start-order stamp the
//!   scheduling tests assert on.
//!
//! Executor threads are dedicated OS threads (jobs *block* on them; the
//! data-parallel inner loops of a job still run on the shared
//! [`crate::global`] pool), so a handful of executors is enough: they
//! coordinate, the pool computes.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduling class of a job. Lower latency first: executors always pop
/// the interactive lane before the batch lane; within a lane jobs run in
/// submission (FIFO) order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive work (queries, small fits): served first.
    Interactive,
    /// Throughput work (bulk fits, sweeps): served when no interactive
    /// job is waiting.
    Batch,
}

/// A cloneable cooperative-cancellation flag. Cancelling is a request:
/// the job observes it at its next [`JobCtx::checkpoint`] and winds down
/// by returning [`JobError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a job produced no value.
#[derive(Debug)]
pub enum JobError {
    /// The job was cancelled (or its queue shut down) before completion.
    Cancelled,
    /// The job panicked; the payload's message, if it had one.
    Panicked(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Execution context handed to every job body.
#[derive(Clone, Debug)]
pub struct JobCtx {
    cancel: CancellationToken,
    progress: Arc<AtomicU64>,
}

impl JobCtx {
    /// The job's cancellation token (cloneable, shareable).
    pub fn token(&self) -> &CancellationToken {
        &self.cancel
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Cooperative safe point: returns `Err(JobError::Cancelled)` when the
    /// job should wind down. Call at iteration boundaries.
    pub fn checkpoint(&self) -> Result<(), JobError> {
        if self.is_cancelled() {
            Err(JobError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Advances the monotone progress counter visible through
    /// [`JobHandle::progress`] (units are job-defined: iterations, rules,
    /// candidate blocks).
    pub fn tick(&self, steps: u64) {
        self.progress.fetch_add(steps, Ordering::Relaxed);
    }
}

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in its priority lane.
    Queued,
    /// Executing on an executor thread.
    Running,
    /// Finished (successfully, cancelled, or panicked).
    Done,
}

const STATE_QUEUED: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_DONE: u8 = 2;

/// Wall-clock observability of one job.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobTimings {
    /// Time spent waiting in the queue (`None` until the job starts; for
    /// jobs aborted while queued, the wait until the abort).
    pub queue_wait: Option<Duration>,
    /// Time spent executing (`None` until the job finishes).
    pub run: Option<Duration>,
}

/// Type-shared completion state between a [`JobHandle`] and the executor.
struct JobShared<T> {
    result: Mutex<Option<Result<T, JobError>>>,
    done: Condvar,
    state: AtomicU8,
    progress: Arc<AtomicU64>,
    cancel: CancellationToken,
    submitted: Instant,
    /// Global start-order stamp (`u64::MAX` = never started).
    start_seq: AtomicU64,
    timings: Mutex<JobTimings>,
}

impl<T> JobShared<T> {
    fn complete(&self, result: Result<T, JobError>) {
        let mut slot = self.result.lock().unwrap();
        *slot = Some(result);
        self.state.store(STATE_DONE, Ordering::Release);
        self.done.notify_all();
    }
}

/// An owned handle to a submitted job: observe, cancel, and [`join`]
/// (consume) it for the result.
///
/// [`join`]: JobHandle::join
pub struct JobHandle<T> {
    shared: Arc<JobShared<T>>,
    priority: Priority,
}

impl<T> JobHandle<T> {
    /// The priority class the job was submitted with.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Requests cooperative cancellation. A job not yet started will never
    /// run its body — it completes with [`JobError::Cancelled`] when an
    /// executor next dequeues it (its turn in the lane; cancellation does
    /// not jump the queue). A running job winds down at its next
    /// checkpoint.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
    }

    /// A clone of the job's cancellation token.
    pub fn token(&self) -> CancellationToken {
        self.shared.cancel.clone()
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        match self.shared.state.load(Ordering::Acquire) {
            STATE_QUEUED => JobStatus::Queued,
            STATE_RUNNING => JobStatus::Running,
            _ => JobStatus::Done,
        }
    }

    /// Monotone progress counter (units are job-defined; see
    /// [`JobCtx::tick`]).
    pub fn progress(&self) -> u64 {
        self.shared.progress.load(Ordering::Relaxed)
    }

    /// The global start-order stamp: job `a` with `start_index() <
    /// b.start_index()` began executing before `b`. `None` until the job
    /// starts (cancelled-while-queued jobs never start).
    pub fn start_index(&self) -> Option<u64> {
        match self.shared.start_seq.load(Ordering::Acquire) {
            u64::MAX => None,
            seq => Some(seq),
        }
    }

    /// Queue-wait and run durations observed so far.
    pub fn timings(&self) -> JobTimings {
        *self.shared.timings.lock().unwrap()
    }

    /// Blocks until the job starts executing or finishes (a job cancelled
    /// while queued finishes without ever starting).
    pub fn wait_started(&self) {
        let mut guard = self.shared.result.lock().unwrap();
        while self.shared.state.load(Ordering::Acquire) == STATE_QUEUED {
            guard = self.shared.done.wait(guard).unwrap();
        }
    }

    /// Blocks until the job finishes, without consuming the handle (use
    /// [`JobHandle::join`] for the result; this is for reading timings or
    /// progress of a known-complete job first).
    pub fn wait(&self) {
        let mut guard = self.shared.result.lock().unwrap();
        while self.shared.state.load(Ordering::Acquire) != STATE_DONE {
            guard = self.shared.done.wait(guard).unwrap();
        }
    }

    /// Blocks until the job finishes and returns its result.
    pub fn join(self) -> Result<T, JobError> {
        let mut guard = self.shared.result.lock().unwrap();
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.shared.done.wait(guard).unwrap();
        }
    }
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("priority", &self.priority)
            .field("status", &self.status())
            .field("progress", &self.progress())
            .finish()
    }
}

/// How an executor disposes of a queued job.
enum Disposal {
    /// Run the body (unless already cancelled).
    Execute,
    /// Complete with [`JobError::Cancelled`] without running (shutdown).
    Abort,
}

/// A type-erased queued job: all typed state lives in the closure.
struct QueuedJob {
    run: Box<dyn FnOnce(Disposal) + Send>,
}

/// The two FIFO lanes.
#[derive(Default)]
struct Lanes {
    interactive: VecDeque<QueuedJob>,
    batch: VecDeque<QueuedJob>,
}

impl Lanes {
    fn pop(&mut self) -> Option<QueuedJob> {
        self.interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())
    }

    fn is_empty(&self) -> bool {
        self.interactive.is_empty() && self.batch.is_empty()
    }
}

struct QueueShared {
    lanes: Mutex<Lanes>,
    available: Condvar,
    shutdown: AtomicBool,
    start_seq: AtomicU64,
}

/// A priority job queue with dedicated executor threads. See the
/// [module docs](self) for the scheduling contract.
pub struct JobQueue {
    shared: Arc<QueueShared>,
    executors: Vec<JoinHandle<()>>,
}

impl JobQueue {
    /// A queue served by `executors` dedicated threads (at least 1).
    pub fn new(executors: usize) -> Self {
        let shared = Arc::new(QueueShared {
            lanes: Mutex::new(Lanes::default()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            start_seq: AtomicU64::new(0),
        });
        let executors = (0..executors.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("twoview-jobs-{i}"))
                    .spawn(move || executor_loop(shared))
                    .expect("spawn job executor")
            })
            .collect();
        JobQueue { shared, executors }
    }

    /// Number of executor threads.
    pub fn executors(&self) -> usize {
        self.executors.len()
    }

    /// Submits a job. Thread-safe; callable from any number of threads
    /// concurrently. The body receives a [`JobCtx`] for cancellation
    /// checkpoints and progress ticks.
    pub fn submit<T, F>(&self, priority: Priority, body: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&JobCtx) -> Result<T, JobError> + Send + 'static,
    {
        let shared = Arc::new(JobShared {
            result: Mutex::new(None),
            done: Condvar::new(),
            state: AtomicU8::new(STATE_QUEUED),
            progress: Arc::new(AtomicU64::new(0)),
            cancel: CancellationToken::new(),
            submitted: Instant::now(),
            start_seq: AtomicU64::new(u64::MAX),
            timings: Mutex::new(JobTimings::default()),
        });
        let handle = JobHandle {
            shared: Arc::clone(&shared),
            priority,
        };
        let queue_shared = Arc::clone(&self.shared);
        let run = Box::new(move |disposal: Disposal| {
            let queued_for = shared.submitted.elapsed();
            shared.timings.lock().unwrap().queue_wait = Some(queued_for);
            let abort = matches!(disposal, Disposal::Abort) || shared.cancel.is_cancelled();
            if abort {
                shared.complete(Err(JobError::Cancelled));
                return;
            }
            let seq = queue_shared.start_seq.fetch_add(1, Ordering::Relaxed);
            shared.start_seq.store(seq, Ordering::Release);
            {
                // Status flips under the result lock so `wait_started`'s
                // check-then-wait cannot miss the transition.
                let _guard = shared.result.lock().unwrap();
                shared.state.store(STATE_RUNNING, Ordering::Release);
                shared.done.notify_all();
            }
            let ctx = JobCtx {
                cancel: shared.cancel.clone(),
                progress: Arc::clone(&shared.progress),
            };
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
            shared.timings.lock().unwrap().run = Some(started.elapsed());
            let result = match outcome {
                Ok(r) => r,
                Err(payload) => Err(JobError::Panicked(panic_message(payload.as_ref()))),
            };
            shared.complete(result);
        });
        let job = QueuedJob { run };
        {
            let mut lanes = self.shared.lanes.lock().unwrap();
            match priority {
                Priority::Interactive => lanes.interactive.push_back(job),
                Priority::Batch => lanes.batch.push_back(job),
            }
            self.shared.available.notify_one();
        }
        handle
    }
}

impl Drop for JobQueue {
    /// Shutdown: executors finish their current job, then every job still
    /// queued completes with [`JobError::Cancelled`] (handles never hang).
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.lanes.lock().unwrap();
            self.shared.available.notify_all();
        }
        for executor in self.executors.drain(..) {
            let _ = executor.join();
        }
    }
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("executors", &self.executors.len())
            .finish()
    }
}

fn executor_loop(shared: Arc<QueueShared>) {
    loop {
        let (job, disposal) = {
            let mut lanes = shared.lanes.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    // Drain-and-abort whatever is still queued, then exit.
                    match lanes.pop() {
                        Some(job) => break (job, Disposal::Abort),
                        None => return,
                    }
                }
                match lanes.pop() {
                    Some(job) => break (job, Disposal::Execute),
                    None => lanes = shared.available.wait(lanes).unwrap(),
                }
            }
        };
        (job.run)(disposal);
        // A drained-on-shutdown executor keeps draining until empty.
        if shared.shutdown.load(Ordering::Acquire) {
            let mut lanes = shared.lanes.lock().unwrap();
            if lanes.is_empty() {
                return;
            }
            while let Some(job) = lanes.pop() {
                (job.run)(Disposal::Abort);
            }
            return;
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn submit_and_join() {
        let q = JobQueue::new(2);
        let h = q.submit(Priority::Interactive, |_ctx| Ok(6 * 7));
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn progress_and_timings_observable() {
        let q = JobQueue::new(1);
        let h = q.submit(Priority::Batch, |ctx| {
            ctx.tick(3);
            ctx.tick(4);
            Ok(())
        });
        h.join().unwrap();
        // `join` consumed the handle; submit another to read observables
        // before completion instead.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let h = q.submit(Priority::Batch, move |ctx| -> Result<(), JobError> {
            ctx.tick(7);
            gate_rx.recv().ok();
            Ok(())
        });
        h.wait_started();
        while h.progress() < 7 {
            std::thread::yield_now();
        }
        assert_eq!(h.status(), JobStatus::Running);
        assert!(h.start_index().is_some());
        gate_tx.send(()).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn cancel_while_queued_never_runs() {
        let q = JobQueue::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let victim = q.submit(Priority::Batch, |_ctx| Ok("ran"));
        victim.cancel();
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        match victim.join() {
            Err(JobError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancel_mid_run_observed_at_checkpoint() {
        let q = JobQueue::new(1);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let h = q.submit(Priority::Batch, move |ctx| -> Result<(), JobError> {
            started_tx.send(()).ok();
            loop {
                ctx.checkpoint()?;
                std::thread::yield_now();
            }
        });
        started_rx.recv().unwrap();
        h.cancel();
        match h.join() {
            Err(JobError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn interactive_starts_before_queued_batch() {
        let q = JobQueue::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let batch: Vec<_> = (0..4)
            .map(|i| q.submit(Priority::Batch, move |_ctx| Ok(i)))
            .collect();
        let interactive = q.submit(Priority::Interactive, |_ctx| Ok(99));
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        let i_seq = {
            interactive.wait_started();
            interactive.start_index().unwrap()
        };
        assert_eq!(interactive.join().unwrap(), 99);
        for (k, h) in batch.into_iter().enumerate() {
            h.wait_started();
            let b_seq = h.start_index().unwrap();
            assert!(
                i_seq < b_seq,
                "interactive started at {i_seq}, batch {k} at {b_seq}"
            );
            assert_eq!(h.join().unwrap(), k);
        }
    }

    #[test]
    fn batch_is_fifo_within_class() {
        let q = JobQueue::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let jobs: Vec<_> = (0..6)
            .map(|i| q.submit(Priority::Batch, move |_ctx| Ok(i)))
            .collect();
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        let mut seqs = Vec::new();
        for h in jobs {
            h.wait_started();
            seqs.push(h.start_index().unwrap());
            h.join().unwrap();
        }
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "batch jobs must start in submission order");
    }

    #[test]
    fn panic_is_contained() {
        let q = JobQueue::new(1);
        let h = q.submit(Priority::Batch, |_ctx| -> Result<(), JobError> {
            panic!("kaboom");
        });
        match h.join() {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("kaboom")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The executor survives.
        let h = q.submit(Priority::Interactive, |_ctx| Ok(1));
        assert_eq!(h.join().unwrap(), 1);
    }

    #[test]
    fn shutdown_aborts_queued_jobs() {
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let q = JobQueue::new(1);
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let queued = q.submit(Priority::Batch, |_ctx| Ok(()));
        gate_tx.send(()).unwrap();
        drop(q); // joins the executor; queued job must be aborted, not lost
        blocker.join().unwrap();
        match queued.join() {
            Ok(()) | Err(JobError::Cancelled) => {}
            other => panic!("expected completion or Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_submitters() {
        let q = Arc::new(JobQueue::new(3));
        let total: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut sum = 0u64;
                        for i in 0..25u64 {
                            let p = if i % 2 == 0 {
                                Priority::Interactive
                            } else {
                                Priority::Batch
                            };
                            let h = q.submit(p, move |_ctx| Ok(t * 1000 + i));
                            sum += h.join().unwrap();
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let want: u64 = (0..4u64)
            .flat_map(|t| (0..25u64).map(move |i| t * 1000 + i))
            .sum();
        assert_eq!(total, want);
    }
}
