//! Priority-aware job queue: the serving layer above the worker pool.
//!
//! The [`pool`](crate::pool) underneath parallelises *one* computation;
//! this module schedules *many* computations — translator fits, table
//! evaluations, translation queries — submitted concurrently from any
//! number of threads. Design:
//!
//! * **two priority classes** ([`Priority::Interactive`] and
//!   [`Priority::Batch`]): an executor always serves the interactive lane
//!   first, and each lane is strictly FIFO, so a latency-sensitive query
//!   never queues behind a backlog of batch fits while batch work keeps
//!   its submission order;
//! * **cooperative cancellation** ([`CancellationToken`]): jobs receive a
//!   [`JobCtx`] and are expected to call [`JobCtx::checkpoint`] at their
//!   natural safe points (an iteration boundary, a candidate block). A
//!   cancelled job returns [`JobError::Cancelled`] — never a partial
//!   result — so every *completed* job is bit-identical to a serial run;
//! * **deadlines** ([`Deadline`], via [`JobQueue::submit_opts`]): a
//!   queue-wait bound enforced at dispatch and a total bound enforced at
//!   the same checkpoints as cancellation. An expired job completes with
//!   [`JobError::DeadlineExceeded`] and, like a cancelled one, never
//!   yields a partial result. [`JobHandle::join_timeout`] bounds the
//!   *caller's* wait without affecting the job itself;
//! * **bounded admission with backpressure** ([`QueueConfig`],
//!   [`AdmissionPolicy`]): each lane can be capacity-bounded. A full lane
//!   blocks the submitter, rejects the new job
//!   ([`JobError::Rejected`] — the in-process contract an HTTP 429 maps
//!   onto), or sheds the oldest queued batch job to make room;
//! * **observable handles** ([`JobHandle`]): status, a monotone progress
//!   counter, queue-wait/run/attempt timings, and the global start-order
//!   stamp the scheduling tests assert on;
//! * **supervised executors**: each executor thread runs inside a
//!   restart loop, so a panic that escapes a job (only possible via
//!   injected faults — job bodies are unwind-caught) is counted in
//!   [`QueueStats::executors_respawned`] and the executor comes back up
//!   instead of silently shrinking the pool.
//!
//! Executor threads are dedicated OS threads (jobs *block* on them; the
//! data-parallel inner loops of a job still run on the shared
//! [`crate::global`] pool), so a handful of executors is enough: they
//! coordinate, the pool computes.
//!
//! All internal locks go through [`crate::sync`]'s poison-tolerant
//! helpers: one panicked lock holder (fault-injected or otherwise) must
//! not cascade `Panicked("PoisonError")` through unrelated jobs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::faults;
use crate::obs;
use crate::sync::{PoisonTolerantCondvar, PoisonTolerantMutex};

/// Process-wide checkpoint counter (`queue.checkpoints`): one cell shared
/// by every [`JobCtx`] — checkpoints are not a per-queue statistic.
fn checkpoint_counter() -> &'static obs::Counter {
    static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| obs::counter("queue.checkpoints"))
}

/// Stable lane label for trace fields.
fn lane_str(priority: Priority) -> &'static str {
    match priority {
        Priority::Interactive => "interactive",
        Priority::Batch => "batch",
    }
}

/// Scheduling class of a job. Lower latency first: executors always pop
/// the interactive lane before the batch lane; within a lane jobs run in
/// submission (FIFO) order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive work (queries, small fits): served first.
    Interactive,
    /// Throughput work (bulk fits, sweeps): served when no interactive
    /// job is waiting.
    Batch,
}

/// A cloneable cooperative-cancellation flag. Cancelling is a request:
/// the job observes it at its next [`JobCtx::checkpoint`] and winds down
/// by returning [`JobError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a job produced no value.
#[derive(Debug)]
pub enum JobError {
    /// The job was cancelled (or its queue shut down) before completion.
    Cancelled,
    /// The job panicked; the payload's message, if it had one.
    Panicked(String),
    /// A [`Deadline`] expired — while the job was queued (queue-wait
    /// bound, checked at dispatch) or while it ran (total bound, checked
    /// at each [`JobCtx::checkpoint`]). Never a partial result.
    DeadlineExceeded,
    /// Bounded admission turned the job away: its lane was full under
    /// [`AdmissionPolicy::Reject`], or it was the oldest batch job shed
    /// under [`AdmissionPolicy::ShedOldestBatch`]. The backpressure
    /// signal a serving front door maps to HTTP 429.
    Rejected,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            JobError::Rejected => write!(f, "job rejected by admission control"),
        }
    }
}

impl std::error::Error for JobError {}

/// Per-job time bounds, both optional and independent.
///
/// * `queue_wait` — maximum time the job may sit in its lane; enforced
///   once, at dispatch. A job that waited longer completes with
///   [`JobError::DeadlineExceeded`] without ever running.
/// * `total` — maximum time from submission to completion; enforced at
///   dispatch and at every [`JobCtx::checkpoint`] while running, with
///   the same "never a partial result" contract as cancellation.
///
/// Enforcement is cooperative (checkpoint-granular), not preemptive: a
/// job between checkpoints keeps running until its next safe point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Deadline {
    /// Maximum queue wait, checked at dispatch.
    pub queue_wait: Option<Duration>,
    /// Maximum total (queue + run) time, checked at checkpoints.
    pub total: Option<Duration>,
}

impl Deadline {
    /// No bounds (the default).
    pub const NONE: Deadline = Deadline {
        queue_wait: None,
        total: None,
    };

    /// Bound only the total submission-to-completion time.
    pub fn total(limit: Duration) -> Self {
        Deadline {
            queue_wait: None,
            total: Some(limit),
        }
    }

    /// Bound only the queue wait.
    pub fn queue_wait(limit: Duration) -> Self {
        Deadline {
            queue_wait: Some(limit),
            total: None,
        }
    }

    /// Whether any bound is set.
    pub fn is_some(&self) -> bool {
        self.queue_wait.is_some() || self.total.is_some()
    }
}

/// Per-job submission options (see [`JobQueue::submit_opts`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct JobOptions {
    /// Time bounds for this job.
    pub deadline: Deadline,
}

impl JobOptions {
    /// Options carrying only a deadline.
    pub fn with_deadline(deadline: Deadline) -> Self {
        JobOptions { deadline }
    }
}

/// Deterministic retry schedule for transient job failures.
///
/// Used by retry wrappers *inside* a job body (the Engine wraps each
/// fit/translate/predict this way): a panicking attempt is caught and
/// re-run up to `max_attempts` times total, sleeping
/// `base_backoff << (attempt - 1)` between attempts (exponential,
/// deterministic — no jitter, so a seeded chaos run reproduces its
/// schedule exactly). Cancellation and deadline expiry are *not*
/// transient and are never retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (minimum 1 = no retry).
    pub max_attempts: u32,
    /// Sleep before attempt 2; doubles per further attempt.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    /// No retries.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// A policy with at least one attempt.
    pub fn new(max_attempts: u32, base_backoff: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff,
        }
    }

    /// Backoff to sleep after failed attempt number `attempt` (1-based):
    /// `base_backoff * 2^(attempt-1)`, saturating.
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        self.base_backoff.saturating_mul(1u32 << shift)
    }
}

/// Execution context handed to every job body.
#[derive(Clone, Debug)]
pub struct JobCtx {
    cancel: CancellationToken,
    progress: Arc<AtomicU64>,
    /// Absolute total-deadline instant, if any.
    deadline: Option<Instant>,
    /// 1-based attempt counter (bumped by retry wrappers).
    attempts: Arc<AtomicU32>,
}

impl JobCtx {
    /// The job's cancellation token (cloneable, shareable).
    pub fn token(&self) -> &CancellationToken {
        &self.cancel
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Cooperative safe point: returns `Err(JobError::Cancelled)` when
    /// the job should wind down, `Err(JobError::DeadlineExceeded)` when
    /// its total deadline has passed. Call at iteration boundaries. With
    /// no deadline set the check is a single atomic load.
    pub fn checkpoint(&self) -> Result<(), JobError> {
        checkpoint_counter().incr();
        if self.is_cancelled() {
            return Err(JobError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(JobError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// The absolute total-deadline instant, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left before the total deadline (`None` = unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The 1-based attempt number (1 unless a retry wrapper re-ran the
    /// body). Surfaced in [`JobTimings::attempts`].
    pub fn attempt(&self) -> u32 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Records that a retry wrapper is about to re-run the body.
    pub fn mark_retry(&self) {
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed) + 1;
        obs::event("job.retry", &[("attempt", u64::from(attempt).into())]);
    }

    /// Advances the monotone progress counter visible through
    /// [`JobHandle::progress`] (units are job-defined: iterations, rules,
    /// candidate blocks).
    pub fn tick(&self, steps: u64) {
        self.progress.fetch_add(steps, Ordering::Relaxed);
    }
}

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in its priority lane.
    Queued,
    /// Executing on an executor thread.
    Running,
    /// Finished (successfully, cancelled, rejected, expired, or
    /// panicked).
    Done,
}

const STATE_QUEUED: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_DONE: u8 = 2;

/// Wall-clock observability of one job.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobTimings {
    /// Time spent waiting in the queue (`None` until the job starts; for
    /// jobs aborted while queued, the wait until the abort).
    pub queue_wait: Option<Duration>,
    /// Time spent executing (`None` until the job finishes).
    pub run: Option<Duration>,
    /// Body attempts (0 until the job runs; 1 for a first-try success;
    /// >1 when a retry wrapper re-ran a panicked body).
    pub attempts: u32,
}

/// Type-shared completion state between a [`JobHandle`] and the executor.
struct JobShared<T> {
    result: Mutex<Option<Result<T, JobError>>>,
    done: Condvar,
    state: AtomicU8,
    progress: Arc<AtomicU64>,
    cancel: CancellationToken,
    submitted: Instant,
    /// Global start-order stamp (`u64::MAX` = never started).
    start_seq: AtomicU64,
    timings: Mutex<JobTimings>,
}

impl<T> JobShared<T> {
    fn complete(&self, result: Result<T, JobError>) {
        let mut slot = self.result.plock();
        *slot = Some(result);
        self.state.store(STATE_DONE, Ordering::Release);
        self.done.notify_all();
    }
}

/// An owned handle to a submitted job: observe, cancel, and [`join`]
/// (consume) it for the result.
///
/// [`join`]: JobHandle::join
pub struct JobHandle<T> {
    shared: Arc<JobShared<T>>,
    priority: Priority,
}

impl<T> JobHandle<T> {
    /// The priority class the job was submitted with.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Requests cooperative cancellation. A job not yet started will never
    /// run its body — it completes with [`JobError::Cancelled`] when an
    /// executor next dequeues it (its turn in the lane; cancellation does
    /// not jump the queue). A running job winds down at its next
    /// checkpoint.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
    }

    /// A clone of the job's cancellation token.
    pub fn token(&self) -> CancellationToken {
        self.shared.cancel.clone()
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        match self.shared.state.load(Ordering::Acquire) {
            STATE_QUEUED => JobStatus::Queued,
            STATE_RUNNING => JobStatus::Running,
            _ => JobStatus::Done,
        }
    }

    /// Monotone progress counter (units are job-defined; see
    /// [`JobCtx::tick`]).
    pub fn progress(&self) -> u64 {
        self.shared.progress.load(Ordering::Relaxed)
    }

    /// The global start-order stamp: job `a` with `start_index() <
    /// b.start_index()` began executing before `b`. `None` until the job
    /// starts (cancelled-while-queued jobs never start).
    pub fn start_index(&self) -> Option<u64> {
        match self.shared.start_seq.load(Ordering::Acquire) {
            u64::MAX => None,
            seq => Some(seq),
        }
    }

    /// Queue-wait, run, and attempt counts observed so far.
    pub fn timings(&self) -> JobTimings {
        *self.shared.timings.plock()
    }

    /// Blocks until the job starts executing or finishes (a job cancelled
    /// while queued finishes without ever starting).
    pub fn wait_started(&self) {
        let mut guard = self.shared.result.plock();
        while self.shared.state.load(Ordering::Acquire) == STATE_QUEUED {
            guard = self.shared.done.pwait(guard);
        }
    }

    /// Blocks until the job finishes, without consuming the handle (use
    /// [`JobHandle::join`] for the result; this is for reading timings or
    /// progress of a known-complete job first).
    pub fn wait(&self) {
        let mut guard = self.shared.result.plock();
        while self.shared.state.load(Ordering::Acquire) != STATE_DONE {
            guard = self.shared.done.pwait(guard);
        }
    }

    /// Blocks until the job finishes and returns its result.
    pub fn join(self) -> Result<T, JobError> {
        let mut guard = self.shared.result.plock();
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.shared.done.pwait(guard);
        }
    }

    /// Bounded join: waits up to `timeout` for the result. On timeout the
    /// handle is returned so the caller can keep waiting, cancel, or
    /// drop it — the *job itself is unaffected* (this bounds the caller's
    /// wait; use a [`Deadline`] to bound the job).
    pub fn join_timeout(self, timeout: Duration) -> Result<Result<T, JobError>, JobHandle<T>> {
        let wait_until = Instant::now() + timeout;
        let mut guard = self.shared.result.plock();
        loop {
            if let Some(result) = guard.take() {
                drop(guard);
                return Ok(result);
            }
            let now = Instant::now();
            if now >= wait_until {
                drop(guard);
                return Err(self);
            }
            let (g, _) = self.shared.done.pwait_timeout(guard, wait_until - now);
            guard = g;
        }
    }
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("priority", &self.priority)
            .field("status", &self.status())
            .field("progress", &self.progress())
            .finish()
    }
}

/// What to do when a lane is at capacity (see [`QueueConfig`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until the lane has room
    /// (backpressure propagates to the producer).
    #[default]
    Block,
    /// Complete the new job immediately with [`JobError::Rejected`].
    /// The in-process analogue of HTTP 429.
    Reject,
    /// Shed the *oldest queued batch* job (completing it with
    /// [`JobError::Rejected`]) to admit the new one. When there is no
    /// batch job to shed — the interactive lane is full of interactive
    /// work — falls back to rejecting the new job, since shedding batch
    /// cannot make interactive room.
    ShedOldestBatch,
}

/// Construction-time queue configuration.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Dedicated executor threads (at least 1).
    pub executors: usize,
    /// Per-lane queued-job capacity (`None` = unbounded; running jobs
    /// don't count). Both lanes get the same bound.
    pub lane_capacity: Option<usize>,
    /// What a submitter experiences when its lane is full.
    pub admission: AdmissionPolicy,
}

impl QueueConfig {
    /// Unbounded lanes, [`AdmissionPolicy::Block`] (moot while
    /// unbounded), `executors` threads.
    pub fn new(executors: usize) -> Self {
        QueueConfig {
            executors,
            lane_capacity: None,
            admission: AdmissionPolicy::default(),
        }
    }

    /// Bound each lane to `capacity` queued jobs (at least 1).
    pub fn lane_capacity(mut self, capacity: usize) -> Self {
        self.lane_capacity = Some(capacity.max(1));
        self
    }

    /// Set the full-lane policy.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }
}

/// Monotone counters of the queue's robustness events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs turned away by [`AdmissionPolicy::Reject`] (or the
    /// interactive fallback of `ShedOldestBatch`).
    pub rejected: u64,
    /// Queued batch jobs shed by [`AdmissionPolicy::ShedOldestBatch`].
    pub shed: u64,
    /// Jobs whose deadline expired (while queued or running).
    pub timed_out: u64,
    /// Executor threads restarted by supervision after an escaped panic.
    pub executors_respawned: u64,
}

/// How an executor disposes of a queued job.
enum Disposal {
    /// Run the body (unless already cancelled or past deadline).
    Execute,
    /// Complete with [`JobError::Cancelled`] without running (shutdown).
    Abort,
    /// Complete with [`JobError::Rejected`] without running (shed by
    /// admission control).
    Shed,
}

/// A type-erased queued job: all typed state lives in the closure. The
/// token and priority ride alongside so shutdown can cancel queued jobs
/// and a dying executor can requeue into the right lane, both without
/// running the closure.
struct QueuedJob {
    run: Box<dyn FnOnce(Disposal) + Send>,
    cancel: CancellationToken,
    priority: Priority,
}

/// The two FIFO lanes plus the per-executor registry of running jobs'
/// tokens. The registry lives under the same mutex as the lanes so a
/// pop-and-register is atomic with respect to shutdown's cancel sweep:
/// a job is always visible either in its lane or in `active`.
struct Lanes {
    interactive: VecDeque<QueuedJob>,
    batch: VecDeque<QueuedJob>,
    active: Vec<Option<CancellationToken>>,
}

impl Lanes {
    fn pop(&mut self) -> Option<QueuedJob> {
        self.interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())
    }

    fn push_front(&mut self, job: QueuedJob) {
        match job.priority {
            Priority::Interactive => self.interactive.push_front(job),
            Priority::Batch => self.batch.push_front(job),
        }
    }

    fn lane_len(&self, priority: Priority) -> usize {
        match priority {
            Priority::Interactive => self.interactive.len(),
            Priority::Batch => self.batch.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.interactive.is_empty() && self.batch.is_empty()
    }
}

struct QueueShared {
    lanes: Mutex<Lanes>,
    available: Condvar,
    /// Signalled when a bounded lane gains room (a job was popped).
    space: Condvar,
    shutdown: AtomicBool,
    start_seq: AtomicU64,
    lane_capacity: Option<usize>,
    admission: AdmissionPolicy,
    /// Robustness counters are registry cells (`queue.*`): the queue's
    /// own [`QueueStats`] view and the process-wide
    /// [`obs::snapshot`] read the *same* atomics — one source of truth.
    stat_rejected: obs::Counter,
    stat_shed: obs::Counter,
    stat_timed_out: obs::Counter,
    stat_respawned: obs::Counter,
    /// Queued jobs across both lanes, maintained under the lanes lock.
    depth: obs::Gauge,
    /// Process-wide latency histograms (shared cores by name).
    wait_hist: obs::Histogram,
    run_hist: obs::Histogram,
}

/// A priority job queue with dedicated, supervised executor threads.
/// See the [module docs](self) for the scheduling contract.
pub struct JobQueue {
    shared: Arc<QueueShared>,
    executors: Vec<JoinHandle<()>>,
}

impl JobQueue {
    /// An unbounded queue served by `executors` dedicated threads (at
    /// least 1).
    pub fn new(executors: usize) -> Self {
        Self::with_config(QueueConfig::new(executors))
    }

    /// A queue with explicit capacity/admission configuration.
    pub fn with_config(config: QueueConfig) -> Self {
        let n = config.executors.max(1);
        let shared = Arc::new(QueueShared {
            lanes: Mutex::new(Lanes {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                active: vec![None; n],
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            shutdown: AtomicBool::new(false),
            start_seq: AtomicU64::new(0),
            lane_capacity: config.lane_capacity,
            admission: config.admission,
            stat_rejected: obs::counter("queue.jobs_rejected"),
            stat_shed: obs::counter("queue.jobs_shed"),
            stat_timed_out: obs::counter("queue.jobs_timed_out"),
            stat_respawned: obs::counter("queue.executors_respawned"),
            depth: obs::gauge("queue.depth"),
            wait_hist: obs::histogram("queue.wait"),
            run_hist: obs::histogram("queue.run"),
        });
        let executors = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("twoview-jobs-{i}"))
                    .spawn(move || supervised_executor(&shared, i))
                    // lint: allow(panic_hygiene) — thread spawn fails only on OS resource exhaustion; queue construction cannot proceed
                    .expect("spawn job executor")
            })
            .collect();
        JobQueue { shared, executors }
    }

    /// Number of executor threads.
    pub fn executors(&self) -> usize {
        self.executors.len()
    }

    /// Robustness counters accumulated since construction: a view over
    /// this queue's registry cells (`queue.*` in [`obs::snapshot`]).
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            rejected: self.shared.stat_rejected.get(),
            shed: self.shared.stat_shed.get(),
            timed_out: self.shared.stat_timed_out.get(),
            executors_respawned: self.shared.stat_respawned.get(),
        }
    }

    /// Submits a job with default options (no deadline). Thread-safe;
    /// callable from any number of threads concurrently. The body
    /// receives a [`JobCtx`] for cancellation checkpoints and progress
    /// ticks.
    pub fn submit<T, F>(&self, priority: Priority, body: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&JobCtx) -> Result<T, JobError> + Send + 'static,
    {
        self.submit_opts(priority, JobOptions::default(), body)
    }

    /// Submits a job with explicit [`JobOptions`] (deadlines). Under a
    /// bounded lane the configured [`AdmissionPolicy`] applies; a
    /// rejected job's handle completes immediately with
    /// [`JobError::Rejected`].
    pub fn submit_opts<T, F>(&self, priority: Priority, opts: JobOptions, body: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&JobCtx) -> Result<T, JobError> + Send + 'static,
    {
        let shared = Arc::new(JobShared {
            result: Mutex::new(None),
            done: Condvar::new(),
            state: AtomicU8::new(STATE_QUEUED),
            progress: Arc::new(AtomicU64::new(0)),
            cancel: CancellationToken::new(),
            submitted: Instant::now(),
            start_seq: AtomicU64::new(u64::MAX),
            timings: Mutex::new(JobTimings::default()),
        });
        let handle = JobHandle {
            shared: Arc::clone(&shared),
            priority,
        };
        let cancel = shared.cancel.clone();
        let total_deadline = opts
            .deadline
            .total
            .and_then(|limit| shared.submitted.checked_add(limit));
        let queue_shared = Arc::clone(&self.shared);
        let run = Box::new(move |disposal: Disposal| {
            let queued_for = shared.submitted.elapsed();
            shared.timings.plock().queue_wait = Some(queued_for);
            queue_shared.wait_hist.observe(queued_for);
            match disposal {
                Disposal::Abort => {
                    obs::event("job.abort", &[("lane", lane_str(priority).into())]);
                    shared.complete(Err(JobError::Cancelled));
                    return;
                }
                Disposal::Shed => {
                    shared.complete(Err(JobError::Rejected));
                    return;
                }
                Disposal::Execute => {}
            }
            if shared.cancel.is_cancelled() {
                shared.complete(Err(JobError::Cancelled));
                return;
            }
            let queue_expired = opts
                .deadline
                .queue_wait
                .is_some_and(|limit| queued_for > limit);
            let total_expired = total_deadline.is_some_and(|at| Instant::now() >= at);
            if queue_expired || total_expired {
                queue_shared.stat_timed_out.incr();
                obs::event("job.timeout", &[("while", "queued".into())]);
                shared.complete(Err(JobError::DeadlineExceeded));
                return;
            }
            let seq = queue_shared.start_seq.fetch_add(1, Ordering::Relaxed);
            shared.start_seq.store(seq, Ordering::Release);
            {
                // Status flips under the result lock so `wait_started`'s
                // check-then-wait cannot miss the transition.
                let _guard = shared.result.plock();
                shared.state.store(STATE_RUNNING, Ordering::Release);
                shared.done.notify_all();
            }
            let ctx = JobCtx {
                cancel: shared.cancel.clone(),
                progress: Arc::clone(&shared.progress),
                deadline: total_deadline,
                attempts: Arc::new(AtomicU32::new(1)),
            };
            let mut span = obs::span("job.run");
            span.field("lane", lane_str(priority))
                .field("queue_wait_us", queued_for.as_micros() as u64);
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
            let ran_for = started.elapsed();
            queue_shared.run_hist.observe(ran_for);
            {
                let mut timings = shared.timings.plock();
                timings.run = Some(ran_for);
                timings.attempts = ctx.attempts.load(Ordering::Relaxed);
            }
            let result = match outcome {
                Ok(r) => r,
                Err(payload) => Err(JobError::Panicked(panic_message(payload.as_ref()))),
            };
            // A deadline that expires mid-run without the body noticing
            // (e.g. it panicked first) still counts as timed out only
            // when the body reported it.
            if matches!(result, Err(JobError::DeadlineExceeded)) {
                queue_shared.stat_timed_out.incr();
                obs::event("job.timeout", &[("while", "running".into())]);
            }
            span.field("attempts", u64::from(ctx.attempts.load(Ordering::Relaxed)))
                .field(
                    "outcome",
                    match &result {
                        Ok(_) => "ok",
                        Err(JobError::Cancelled) => "cancelled",
                        Err(JobError::Panicked(_)) => "panicked",
                        Err(JobError::DeadlineExceeded) => "deadline",
                        Err(JobError::Rejected) => "rejected",
                    },
                );
            // Close (and drain) the span before waking joiners so a
            // joiner that reads the trace right after `join` sees it.
            drop(span);
            if obs::trace_enabled() {
                obs::flush_trace();
            }
            shared.complete(result);
        });
        let job = QueuedJob {
            run,
            cancel,
            priority,
        };
        obs::event("job.enqueue", &[("lane", lane_str(priority).into())]);
        {
            let mut lanes = self.shared.lanes.plock();
            if let Some(capacity) = self.shared.lane_capacity {
                while lanes.lane_len(priority) >= capacity {
                    match self.shared.admission {
                        AdmissionPolicy::Block => {
                            if self.shared.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            lanes = self.shared.space.pwait(lanes);
                        }
                        AdmissionPolicy::Reject => {
                            self.shared.stat_rejected.incr();
                            drop(lanes);
                            obs::event("job.reject", &[("lane", lane_str(priority).into())]);
                            handle.shared.complete(Err(JobError::Rejected));
                            return handle;
                        }
                        AdmissionPolicy::ShedOldestBatch => {
                            // Shedding batch cannot make interactive
                            // room, so a full interactive lane rejects.
                            let victim = match priority {
                                Priority::Batch => lanes.batch.pop_front(),
                                Priority::Interactive => None,
                            };
                            match victim {
                                Some(victim) => {
                                    self.shared.stat_shed.incr();
                                    obs::event("job.shed", &[("lane", "batch".into())]);
                                    (victim.run)(Disposal::Shed);
                                }
                                None => {
                                    self.shared.stat_rejected.incr();
                                    drop(lanes);
                                    obs::event(
                                        "job.reject",
                                        &[("lane", lane_str(priority).into())],
                                    );
                                    handle.shared.complete(Err(JobError::Rejected));
                                    return handle;
                                }
                            }
                        }
                    }
                }
            }
            match priority {
                Priority::Interactive => lanes.interactive.push_back(job),
                Priority::Batch => lanes.batch.push_back(job),
            }
            self.shared
                .depth
                .set((lanes.interactive.len() + lanes.batch.len()) as u64);
            self.shared.available.notify_one();
        }
        handle
    }
}

impl Drop for JobQueue {
    /// Shutdown. In order:
    ///
    /// 1. the shutdown flag flips;
    /// 2. under the lanes lock, every **queued** job's token and every
    ///    **running** job's token (the `active` registry) is cancelled —
    ///    the registry is maintained under the same lock as the lanes,
    ///    so no job can be mid-pop and missed by this sweep;
    /// 3. executors are woken and joined: each drains the lanes,
    ///    completing still-queued jobs with [`JobError::Cancelled`], and
    ///    an in-flight job winds down at its next
    ///    [`JobCtx::checkpoint`].
    ///
    /// Consequently `drop` blocks only until running jobs reach a
    /// checkpoint — never for their natural completion — and every
    /// outstanding [`JobHandle`] resolves (no handle ever hangs).
    /// Submitters blocked on admission are woken too and their jobs
    /// drain as above.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let lanes = self.shared.lanes.plock();
            for token in lanes.active.iter().flatten() {
                token.cancel();
            }
            for job in lanes.interactive.iter().chain(lanes.batch.iter()) {
                job.cancel.cancel();
            }
            self.shared.available.notify_all();
            self.shared.space.notify_all();
        }
        for executor in self.executors.drain(..) {
            let _ = executor.join();
        }
    }
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("executors", &self.executors.len())
            .field("lane_capacity", &self.shared.lane_capacity)
            .field("admission", &self.shared.admission)
            .finish()
    }
}

/// Supervision wrapper: restarts the executor body when a panic escapes
/// it. Job-body panics are caught inside the job closure, so the only
/// way out is a panic in the dispatch machinery itself — in practice the
/// injected [`faults::points::EXECUTOR_DIE`] fault, which requeues its
/// job before unwinding. The restart is counted in
/// [`QueueStats::executors_respawned`].
fn supervised_executor(shared: &Arc<QueueShared>, idx: usize) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| executor_loop(shared, idx))) {
            Ok(()) => return,
            Err(_) => {
                shared.stat_respawned.incr();
                obs::event("executor.respawn", &[("executor", idx.into())]);
                shared.lanes.plock().active[idx] = None;
            }
        }
    }
}

fn executor_loop(shared: &Arc<QueueShared>, idx: usize) {
    loop {
        let (job, disposal) = {
            let mut lanes = shared.lanes.plock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    // Drain-and-abort whatever is still queued, then exit.
                    match lanes.pop() {
                        Some(job) => break (job, Disposal::Abort),
                        None => return,
                    }
                }
                match lanes.pop() {
                    Some(job) => {
                        if faults::should_fire(faults::points::EXECUTOR_DIE) {
                            // Requeue at the front (lane order preserved),
                            // hand the work to a peer, and die; the
                            // supervisor respawns this executor.
                            lanes.push_front(job);
                            shared.available.notify_one();
                            panic!(
                                "{} {}",
                                faults::INJECTED_PANIC_PREFIX,
                                faults::points::EXECUTOR_DIE
                            );
                        }
                        lanes.active[idx] = Some(job.cancel.clone());
                        shared
                            .depth
                            .set((lanes.interactive.len() + lanes.batch.len()) as u64);
                        break (job, Disposal::Execute);
                    }
                    None => lanes = shared.available.pwait(lanes),
                }
            }
        };
        // The pop freed lane room: wake one blocked submitter.
        shared.space.notify_all();
        let executed = matches!(disposal, Disposal::Execute);
        (job.run)(disposal);
        if executed {
            shared.lanes.plock().active[idx] = None;
        }
        // A drained-on-shutdown executor keeps draining until empty.
        if shared.shutdown.load(Ordering::Acquire) {
            let mut lanes = shared.lanes.plock();
            if lanes.is_empty() {
                return;
            }
            while let Some(job) = lanes.pop() {
                (job.run)(Disposal::Abort);
            }
            return;
        }
    }
}

/// Best-effort extraction of a panic payload's message. Public so retry
/// wrappers outside this crate can stringify a caught payload the same
/// way the executor does.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn submit_and_join() {
        let q = JobQueue::new(2);
        let h = q.submit(Priority::Interactive, |_ctx| Ok(6 * 7));
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn progress_and_timings_observable() {
        let q = JobQueue::new(1);
        let h = q.submit(Priority::Batch, |ctx| {
            ctx.tick(3);
            ctx.tick(4);
            Ok(())
        });
        h.wait();
        assert_eq!(h.timings().attempts, 1);
        h.join().unwrap();
        // `join` consumed the handle; submit another to read observables
        // before completion instead.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let h = q.submit(Priority::Batch, move |ctx| -> Result<(), JobError> {
            ctx.tick(7);
            gate_rx.recv().ok();
            Ok(())
        });
        h.wait_started();
        while h.progress() < 7 {
            std::thread::yield_now();
        }
        assert_eq!(h.status(), JobStatus::Running);
        assert!(h.start_index().is_some());
        gate_tx.send(()).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn cancel_while_queued_never_runs() {
        let q = JobQueue::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let victim = q.submit(Priority::Batch, |_ctx| Ok("ran"));
        victim.cancel();
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        match victim.join() {
            Err(JobError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancel_mid_run_observed_at_checkpoint() {
        let q = JobQueue::new(1);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let h = q.submit(Priority::Batch, move |ctx| -> Result<(), JobError> {
            started_tx.send(()).ok();
            loop {
                ctx.checkpoint()?;
                std::thread::yield_now();
            }
        });
        started_rx.recv().unwrap();
        h.cancel();
        match h.join() {
            Err(JobError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn interactive_starts_before_queued_batch() {
        let q = JobQueue::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let batch: Vec<_> = (0..4)
            .map(|i| q.submit(Priority::Batch, move |_ctx| Ok(i)))
            .collect();
        let interactive = q.submit(Priority::Interactive, |_ctx| Ok(99));
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        let i_seq = {
            interactive.wait_started();
            interactive.start_index().unwrap()
        };
        assert_eq!(interactive.join().unwrap(), 99);
        for (k, h) in batch.into_iter().enumerate() {
            h.wait_started();
            let b_seq = h.start_index().unwrap();
            assert!(
                i_seq < b_seq,
                "interactive started at {i_seq}, batch {k} at {b_seq}"
            );
            assert_eq!(h.join().unwrap(), k);
        }
    }

    #[test]
    fn batch_is_fifo_within_class() {
        let q = JobQueue::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let jobs: Vec<_> = (0..6)
            .map(|i| q.submit(Priority::Batch, move |_ctx| Ok(i)))
            .collect();
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        let mut seqs = Vec::new();
        for h in jobs {
            h.wait_started();
            seqs.push(h.start_index().unwrap());
            h.join().unwrap();
        }
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "batch jobs must start in submission order");
    }

    #[test]
    fn panic_is_contained() {
        let q = JobQueue::new(1);
        let h = q.submit(Priority::Batch, |_ctx| -> Result<(), JobError> {
            panic!("kaboom");
        });
        match h.join() {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("kaboom")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The executor survives.
        let h = q.submit(Priority::Interactive, |_ctx| Ok(1));
        assert_eq!(h.join().unwrap(), 1);
    }

    #[test]
    fn shutdown_aborts_queued_jobs() {
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let q = JobQueue::new(1);
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let queued = q.submit(Priority::Batch, |_ctx| Ok(()));
        gate_tx.send(()).unwrap();
        drop(q); // joins the executor; queued job must be aborted, not lost
        blocker.join().unwrap();
        match queued.join() {
            Ok(()) | Err(JobError::Cancelled) => {}
            other => panic!("expected completion or Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn drop_cancels_inflight_job() {
        // The Drop audit: a job that would run forever must be wound
        // down via cancellation at its next checkpoint — drop() must not
        // wait for natural completion, and the handle must not hang.
        let q = JobQueue::new(1);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let h = q.submit(Priority::Batch, move |ctx| -> Result<(), JobError> {
            started_tx.send(()).ok();
            loop {
                ctx.checkpoint()?;
                std::thread::yield_now();
            }
        });
        started_rx.recv().unwrap();
        let dropped_at = Instant::now();
        drop(q);
        assert!(
            dropped_at.elapsed() < Duration::from_secs(10),
            "drop must not wait for natural completion"
        );
        match h.join() {
            Err(JobError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn queue_wait_deadline_expires_while_queued() {
        let q = JobQueue::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let opts = JobOptions::with_deadline(Deadline::queue_wait(Duration::from_millis(5)));
        let victim = q.submit_opts(Priority::Batch, opts, |_ctx| Ok("ran"));
        std::thread::sleep(Duration::from_millis(20));
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        match victim.join() {
            Err(JobError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(q.stats().timed_out, 1);
    }

    #[test]
    fn total_deadline_observed_at_checkpoint() {
        let q = JobQueue::new(1);
        let opts = JobOptions::with_deadline(Deadline::total(Duration::from_millis(10)));
        let h = q.submit_opts(Priority::Batch, opts, |ctx| -> Result<(), JobError> {
            loop {
                ctx.checkpoint()?;
                std::thread::yield_now();
            }
        });
        match h.join() {
            Err(JobError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(q.stats().timed_out, 1);
    }

    #[test]
    fn join_timeout_returns_handle_then_result() {
        let q = JobQueue::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let h = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(123)
        });
        h.wait_started();
        let h = match h.join_timeout(Duration::from_millis(10)) {
            Err(handle) => handle,
            Ok(r) => panic!("expected timeout, got {r:?}"),
        };
        assert_eq!(h.status(), JobStatus::Running, "job unaffected by timeout");
        gate_tx.send(()).unwrap();
        assert_eq!(
            h.join_timeout(Duration::from_secs(30))
                .expect("finishes")
                .unwrap(),
            123
        );
    }

    #[test]
    fn admission_reject_when_lane_full() {
        let config = QueueConfig::new(1)
            .lane_capacity(1)
            .admission(AdmissionPolicy::Reject);
        let q = JobQueue::with_config(config);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(0)
        });
        blocker.wait_started();
        let queued = q.submit(Priority::Batch, |_ctx| Ok(1));
        let rejected = q.submit(Priority::Batch, |_ctx| Ok(2));
        match rejected.join() {
            Err(JobError::Rejected) => {}
            other => panic!("expected Rejected, got {other:?}"),
        }
        // The other lane is independent: interactive still admits.
        let inter = q.submit(Priority::Interactive, |_ctx| Ok(3));
        gate_tx.send(()).unwrap();
        assert_eq!(blocker.join().unwrap(), 0);
        assert_eq!(queued.join().unwrap(), 1);
        assert_eq!(inter.join().unwrap(), 3);
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn admission_shed_oldest_batch() {
        let config = QueueConfig::new(1)
            .lane_capacity(1)
            .admission(AdmissionPolicy::ShedOldestBatch);
        let q = JobQueue::with_config(config);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(0)
        });
        blocker.wait_started();
        let oldest = q.submit(Priority::Batch, |_ctx| Ok(1));
        let newest = q.submit(Priority::Batch, |_ctx| Ok(2));
        match oldest.join() {
            Err(JobError::Rejected) => {}
            other => panic!("expected shed oldest to be Rejected, got {other:?}"),
        }
        gate_tx.send(()).unwrap();
        assert_eq!(blocker.join().unwrap(), 0);
        assert_eq!(newest.join().unwrap(), 2);
        assert_eq!(q.stats().shed, 1);
    }

    #[test]
    fn admission_block_applies_backpressure() {
        let config = QueueConfig::new(1)
            .lane_capacity(1)
            .admission(AdmissionPolicy::Block);
        let q = Arc::new(JobQueue::with_config(config));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = q.submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(0)
        });
        blocker.wait_started();
        let queued = q.submit(Priority::Batch, |_ctx| Ok(1));
        let (submitted_tx, submitted_rx) = mpsc::channel::<()>();
        let q2 = Arc::clone(&q);
        let submitter = std::thread::spawn(move || {
            let h = q2.submit(Priority::Batch, |_ctx| Ok(2));
            submitted_tx.send(()).ok();
            h.join()
        });
        // The submitter must be blocked while the lane is full.
        assert!(submitted_rx
            .recv_timeout(Duration::from_millis(50))
            .is_err());
        gate_tx.send(()).unwrap();
        assert_eq!(blocker.join().unwrap(), 0);
        assert_eq!(queued.join().unwrap(), 1);
        assert_eq!(submitter.join().unwrap().unwrap(), 2);
        assert_eq!(q.stats().rejected, 0);
    }

    #[test]
    fn retry_policy_backoff_schedule() {
        let p = RetryPolicy::new(4, Duration::from_millis(3));
        assert_eq!(p.backoff_after(1), Duration::from_millis(3));
        assert_eq!(p.backoff_after(2), Duration::from_millis(6));
        assert_eq!(p.backoff_after(3), Duration::from_millis(12));
        assert_eq!(RetryPolicy::new(0, Duration::ZERO).max_attempts, 1);
        assert_eq!(RetryPolicy::default().max_attempts, 1);
    }

    #[test]
    fn concurrent_submitters() {
        let q = Arc::new(JobQueue::new(3));
        let total: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut sum = 0u64;
                        for i in 0..25u64 {
                            let p = if i % 2 == 0 {
                                Priority::Interactive
                            } else {
                                Priority::Batch
                            };
                            let h = q.submit(p, move |_ctx| Ok(t * 1000 + i));
                            sum += h.join().unwrap();
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let want: u64 = (0..4u64)
            .flat_map(|t| (0..25u64).map(move |i| t * 1000 + i))
            .sum();
        assert_eq!(total, want);
    }
}
