//! Deterministic fault injection for chaos testing.
//!
//! Production robustness claims ("a panicked fit is retried", "a failed
//! cache warm degrades instead of erroring", "a dead executor is
//! respawned") are untestable unless the failures can be provoked on
//! demand, *repeatably*. This module threads named **fault points**
//! through the serving stack — mining, seed-cache warm, SELECT/EXACT/
//! GREEDY checkpoints, executor dispatch (see [`points`]) — each firing
//! with a configured probability drawn from a **seeded counter-based
//! hash**, so a given `(seed, point, hit-index)` triple always produces
//! the same decision: a chaos run is bit-reproducible, and a failure
//! seen in CI replays locally from the seed alone.
//!
//! # Configuration
//!
//! Programmatic (tests):
//!
//! ```
//! use twoview_runtime::faults::{self, FaultPlan};
//! faults::configure(FaultPlan::new().point("demo.fault", 1.0, 42));
//! assert!(faults::should_fire("demo.fault"));
//! faults::clear();
//! assert!(!faults::should_fire("demo.fault"));
//! ```
//!
//! Or via the environment, read lazily on the first probe:
//!
//! ```text
//! TWOVIEW_FAULTS="mine.panic=0.1@seed42,cache.warm_fail=1"
//! ```
//!
//! Each entry is `name=probability`, optionally `@seedN` (or `@N`) to
//! set that point's seed (default 0). Malformed entries are warned
//! about on stderr and skipped. [`configure`]/[`clear`] always win over
//! the environment.
//!
//! # Cost when disabled
//!
//! The harness is compiled in unconditionally, but the whole disabled
//! path is **one relaxed atomic load** (`GATE == OFF`) — no lock, no
//! hash, no branch on configuration data — so production binaries pay
//! nothing for carrying it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::sync::PoisonTolerantMutex;

/// Names of the fault points wired through the workspace. Any string
/// works as a point name; these are the ones production code probes.
pub mod points {
    /// Panic at the top of closed/frequent two-view mining.
    pub const MINE_PANIC: &str = "mine.panic";
    /// Seed-tidset cache warm reports failure (engine degrades to the
    /// uncached recompute path instead of erroring).
    pub const CACHE_WARM_FAIL: &str = "cache.warm_fail";
    /// Panic at a SELECT iteration checkpoint.
    pub const SELECT_CHECKPOINT_PANIC: &str = "select.checkpoint.panic";
    /// Panic at an EXACT search checkpoint.
    pub const EXACT_CHECKPOINT_PANIC: &str = "exact.checkpoint.panic";
    /// Panic at a GREEDY iteration checkpoint.
    pub const GREEDY_CHECKPOINT_PANIC: &str = "greedy.checkpoint.panic";
    /// Kill the executor thread at job dispatch (the job is requeued
    /// first; supervision respawns the executor).
    pub const EXECUTOR_DIE: &str = "executor.die";
    /// Snapshot write fails with an injected I/O error before any
    /// bytes reach disk (the temp file is never created).
    pub const SNAPSHOT_WRITE_FAIL: &str = "snapshot.write_fail";
    /// Snapshot write is torn: the file is truncated at a seeded
    /// offset, simulating a crash mid-write.
    pub const SNAPSHOT_TORN: &str = "snapshot.torn";
    /// Snapshot write is corrupted: a single bit at a seeded offset is
    /// flipped, simulating at-rest bit rot.
    pub const SNAPSHOT_CORRUPT: &str = "snapshot.corrupt";
}

/// Message prefix of every injected panic; retry layers use it to
/// recognise transient injected failures in tests.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

const GATE_UNINIT: u8 = 0;
const GATE_OFF: u8 = 1;
const GATE_ON: u8 = 2;

/// Three-state gate: `UNINIT` (env not yet consulted), `OFF`, `ON`.
static GATE: AtomicU8 = AtomicU8::new(GATE_UNINIT);
static REGISTRY: Mutex<Option<HashMap<String, PointState>>> = Mutex::new(None);

#[derive(Debug)]
struct PointState {
    probability: f64,
    seed: u64,
    /// Times this point was probed (the deterministic draw counter).
    hits: u64,
    /// Times the probe decided to fire.
    fired: u64,
}

/// A set of fault points with probabilities and seeds. Build one
/// programmatically with [`FaultPlan::point`] or parse the
/// `TWOVIEW_FAULTS` syntax with [`FaultPlan::parse`], then install it
/// with [`configure`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    entries: Vec<(String, f64, u64)>,
}

impl FaultPlan {
    /// An empty plan (installing it disables all faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or overrides) a fault point firing with `probability`
    /// (clamped to `[0, 1]`) under `seed`.
    pub fn point(mut self, name: &str, probability: f64, seed: u64) -> Self {
        self.entries
            .push((name.to_string(), probability.clamp(0.0, 1.0), seed));
        self
    }

    /// Whether the plan holds no points.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses the `TWOVIEW_FAULTS` syntax:
    /// `"mine.panic=0.1@seed42,cache.warm_fail=1"`. Returns the plan
    /// plus a warning string per malformed entry (which is skipped).
    pub fn parse(spec: &str) -> (Self, Vec<String>) {
        let mut plan = Self::new();
        let mut warnings = Vec::new();
        for raw in spec.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, rest)) = entry.split_once('=') else {
                warnings.push(format!("fault entry {entry:?}: missing '='"));
                continue;
            };
            let (prob_str, seed_str) = match rest.split_once('@') {
                Some((p, s)) => (p, Some(s)),
                None => (rest, None),
            };
            let Ok(probability) = prob_str.trim().parse::<f64>() else {
                warnings.push(format!("fault entry {entry:?}: bad probability"));
                continue;
            };
            let seed = match seed_str {
                None => 0,
                Some(s) => {
                    let digits = s.trim().trim_start_matches("seed");
                    match digits.parse::<u64>() {
                        Ok(v) => v,
                        Err(_) => {
                            warnings.push(format!("fault entry {entry:?}: bad seed"));
                            continue;
                        }
                    }
                }
            };
            plan = plan.point(name.trim(), probability, seed);
        }
        (plan, warnings)
    }
}

/// Installs `plan` process-wide, resetting all hit/fired counters.
/// An empty plan turns the harness off. Overrides `TWOVIEW_FAULTS`.
pub fn configure(plan: FaultPlan) {
    let mut registry = REGISTRY.plock();
    if plan.is_empty() {
        *registry = None;
        GATE.store(GATE_OFF, Ordering::Release);
        return;
    }
    let mut map = HashMap::new();
    for (name, probability, seed) in plan.entries {
        map.insert(
            name,
            PointState {
                probability,
                seed,
                hits: 0,
                fired: 0,
            },
        );
    }
    *registry = Some(map);
    GATE.store(GATE_ON, Ordering::Release);
}

/// Disables all fault points (equivalent to installing an empty plan).
pub fn clear() {
    configure(FaultPlan::new());
}

/// Whether any fault point is active. The `false` path is one relaxed
/// atomic load once the gate has initialised.
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let mut registry = REGISTRY.plock();
    // Another thread may have initialised while we waited for the lock.
    match GATE.load(Ordering::Acquire) {
        GATE_ON => return true,
        GATE_OFF => return false,
        _ => {}
    }
    let plan = match std::env::var("TWOVIEW_FAULTS") {
        Ok(spec) => {
            let (plan, warnings) = FaultPlan::parse(&spec);
            for w in warnings {
                eprintln!("TWOVIEW_FAULTS: {w}");
            }
            plan
        }
        Err(_) => FaultPlan::new(),
    };
    if plan.is_empty() {
        *registry = None;
        GATE.store(GATE_OFF, Ordering::Release);
        false
    } else {
        let mut map = HashMap::new();
        for (name, probability, seed) in plan.entries {
            map.insert(
                name,
                PointState {
                    probability,
                    seed,
                    hits: 0,
                    fired: 0,
                },
            );
        }
        *registry = Some(map);
        GATE.store(GATE_ON, Ordering::Release);
        true
    }
}

/// Probes fault point `point`: returns `true` when it should fire this
/// time. Deterministic in `(seed, point, hit index)` — the n-th probe
/// of a point under a given seed always returns the same answer,
/// regardless of thread interleaving elsewhere.
#[inline]
pub fn should_fire(point: &str) -> bool {
    if !enabled() {
        return false;
    }
    probe_slow(point).is_some()
}

/// Probes `point` like [`should_fire`], but when the point fires
/// returns the deterministic 64-bit draw behind the decision (`None`
/// when it does not fire). Fault sites use the value to derive seeded
/// *parameters* from the same counter-based stream — e.g. the offset
/// where a torn snapshot write truncates, or which bit a corruption
/// flips — so a chaos run's damage pattern replays from the seed alone.
#[inline]
pub fn fire_value(point: &str) -> Option<u64> {
    if !enabled() {
        return None;
    }
    probe_slow(point)
}

#[cold]
fn probe_slow(point: &str) -> Option<u64> {
    let mut registry = REGISTRY.plock();
    let map = registry.as_mut()?;
    let state = map.get_mut(point)?;
    let hit = state.hits;
    state.hits += 1;
    let draw = draw_u64(state.seed, point, hit);
    let fire = if state.probability >= 1.0 {
        true
    } else if state.probability <= 0.0 {
        false
    } else {
        to_fraction(draw) < state.probability
    };
    if fire {
        state.fired += 1;
        Some(draw)
    } else {
        None
    }
}

/// Panics with `"injected fault: {point}"` when the point fires.
/// The no-fault path costs one relaxed atomic load.
#[inline]
pub fn maybe_panic(point: &str) {
    if should_fire(point) {
        panic!("{INJECTED_PANIC_PREFIX} {point}");
    }
}

/// How many times `point` has fired since the last [`configure`].
pub fn fired(point: &str) -> u64 {
    REGISTRY
        .plock()
        .as_ref()
        .and_then(|map| map.get(point))
        .map_or(0, |state| state.fired)
}

/// `(point, hits, fired)` for every configured point, sorted by name.
pub fn snapshot() -> Vec<(String, u64, u64)> {
    let registry = REGISTRY.plock();
    let mut rows: Vec<_> = registry
        .as_ref()
        .map(|map| {
            map.iter()
                .map(|(name, s)| (name.clone(), s.hits, s.fired))
                .collect()
        })
        .unwrap_or_default();
    rows.sort();
    rows
}

/// Counter-based deterministic draw: splitmix64 over the seed, an
/// FNV-1a hash of the point name, and the hit index.
fn draw_u64(seed: u64, point: &str, hit: u64) -> u64 {
    let mut x = seed ^ fnv1a(point.as_bytes()) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

fn to_fraction(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    // Unit tests use only synthetic point names so concurrent tests in
    // other modules (which probe real points) cannot interfere; tests
    // that install plans serialise on a local mutex because the
    // registry is process-global.
    use super::*;

    static EXCLUSIVE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_after_clear() {
        let _guard = EXCLUSIVE.plock();
        clear();
        assert!(!enabled());
        assert!(!should_fire("unit.synthetic.never"));
    }

    #[test]
    fn certain_fault_always_fires_and_counts() {
        let _guard = EXCLUSIVE.plock();
        configure(FaultPlan::new().point("unit.synthetic.sure", 1.0, 7));
        for _ in 0..5 {
            assert!(should_fire("unit.synthetic.sure"));
        }
        assert!(!should_fire("unit.synthetic.other"));
        assert_eq!(fired("unit.synthetic.sure"), 5);
        let snap = snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0], ("unit.synthetic.sure".to_string(), 5, 5));
        clear();
    }

    #[test]
    fn draws_are_deterministic_in_seed_and_hit_index() {
        let _guard = EXCLUSIVE.plock();
        let sequence = |seed: u64| -> Vec<bool> {
            configure(FaultPlan::new().point("unit.synthetic.prob", 0.3, seed));
            (0..64)
                .map(|_| should_fire("unit.synthetic.prob"))
                .collect()
        };
        let a = sequence(42);
        let b = sequence(42);
        let c = sequence(43);
        assert_eq!(a, b, "same seed must reproduce the same decisions");
        assert_ne!(a, c, "different seeds should diverge");
        let hits = a.iter().filter(|&&f| f).count();
        assert!(hits > 0 && hits < 64, "p=0.3 over 64 draws: got {hits}");
        clear();
    }

    #[test]
    fn fire_value_is_deterministic_and_gated() {
        let _guard = EXCLUSIVE.plock();
        clear();
        assert_eq!(fire_value("unit.synthetic.value"), None);
        let draws = |seed: u64| -> Vec<Option<u64>> {
            configure(FaultPlan::new().point("unit.synthetic.value", 1.0, seed));
            (0..8).map(|_| fire_value("unit.synthetic.value")).collect()
        };
        let a = draws(11);
        let b = draws(11);
        let c = draws(12);
        assert_eq!(a, b, "same seed must reproduce the same draw values");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.iter().all(|v| v.is_some()), "p=1.0 always fires");
        let distinct: std::collections::HashSet<_> = a.iter().flatten().collect();
        assert!(distinct.len() > 1, "hit index must vary the draw");
        configure(FaultPlan::new().point("unit.synthetic.value", 0.0, 11));
        assert_eq!(fire_value("unit.synthetic.value"), None);
        clear();
    }

    #[test]
    fn maybe_panic_fires_with_recognisable_message() {
        let _guard = EXCLUSIVE.plock();
        configure(FaultPlan::new().point("unit.synthetic.panic", 1.0, 0));
        let err = std::panic::catch_unwind(|| maybe_panic("unit.synthetic.panic"))
            .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "got {msg:?}");
        clear();
    }

    #[test]
    fn parse_env_syntax() {
        let (plan, warnings) =
            FaultPlan::parse("mine.panic=0.1@seed42, cache.warm_fail=1, bad, x=oops, y=1@z");
        assert_eq!(warnings.len(), 3);
        assert_eq!(
            plan.entries,
            vec![
                ("mine.panic".to_string(), 0.1, 42),
                ("cache.warm_fail".to_string(), 1.0, 0),
            ]
        );
        let (empty, none) = FaultPlan::parse("");
        assert!(empty.is_empty() && none.is_empty());
    }

    #[test]
    fn probability_is_roughly_honoured() {
        let _guard = EXCLUSIVE.plock();
        configure(FaultPlan::new().point("unit.synthetic.rate", 0.5, 9));
        let fired_count = (0..1000)
            .filter(|_| should_fire("unit.synthetic.rate"))
            .count();
        assert!(
            (350..=650).contains(&fired_count),
            "p=0.5 over 1000 draws fired {fired_count}"
        );
        clear();
    }
}
