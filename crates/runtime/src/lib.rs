//! # twoview-runtime
//!
//! A **persistent worker pool** shared by every parallel hot path in the
//! workspace: the SELECT dirty-gain refresh, the EXACT root-level DFS
//! fan-out, and first-level candidate expansion in the miners.
//!
//! Before this crate, each SELECT round spawned (and joined) one OS thread
//! per core via `std::thread::scope`; on corpora where the columnar refresh
//! is sub-millisecond the spawn cost alone ate the parallel speedup. The
//! pool here is created once per process, parks its workers on a condvar
//! between bursts, and hands out work as *chunked tasks stolen from a
//! shared deque* — submitting a round of refresh work costs a mutex push
//! and a wakeup instead of N `clone(2)` calls.
//!
//! Design pillars (see [`Runtime`]):
//!
//! * **std-only** — no external dependencies, consistent with the
//!   workspace's vendored-deps constraint;
//! * **scoped** — [`Runtime::install`] gives a [`Scope`] whose tasks may
//!   borrow from the caller's stack, exactly like `std::thread::scope`;
//!   the call does not return until every spawned task ran to completion;
//! * **caller participation** — the installing thread is itself the
//!   first worker of its scope, so a pool with `t` threads has `t − 1`
//!   parked OS workers and never oversubscribes the machine;
//! * **deterministic ordered reduction** — [`Runtime::map_chunks`]
//!   executes chunks in whatever order the workers steal them, but the
//!   results are written into submission-order slots: output is identical
//!   for any thread count, which is what lets every consumer keep its
//!   bit-identical-across-threads guarantee.
//!
//! Thread-count resolution is centralised in [`configured_threads`] /
//! [`resolve_threads`]: `TWOVIEW_RUNTIME_THREADS` overrides the available
//! parallelism for the whole process, and per-call `Option<usize>` configs
//! (`SelectConfig::n_threads`, `ExactConfig::n_threads`,
//! `MinerConfig::n_threads`) override that per run.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod faults;
pub mod jobs;
pub mod obs;
mod pool;
pub mod sync;

pub use jobs::{
    AdmissionPolicy, CancellationToken, Deadline, JobCtx, JobError, JobHandle, JobOptions,
    JobQueue, JobStatus, JobTimings, Priority, QueueConfig, QueueStats, RetryPolicy,
};
pub use pool::{Runtime, Scope};

use std::sync::OnceLock;

/// Process-wide thread budget: `TWOVIEW_RUNTIME_THREADS` if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
///
/// Read once and cached — the global pool is sized from it, so a mid-run
/// environment change could not be honoured anyway.
pub fn configured_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("TWOVIEW_RUNTIME_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Resolves a per-call `n_threads` config against the process default:
/// `None` means [`configured_threads`], and the result is at least 1.
pub fn resolve_threads(opt: Option<usize>) -> usize {
    opt.unwrap_or_else(configured_threads).max(1)
}

/// The process-wide pool, created on first use with
/// [`configured_threads`]`() − 1` parked workers (the caller of each scope
/// is the remaining participant). Never torn down; workers park between
/// bursts and cost nothing while idle.
pub fn global() -> &'static Runtime {
    static GLOBAL: OnceLock<Runtime> = OnceLock::new();
    GLOBAL.get_or_init(|| Runtime::new(configured_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_defaults_and_overrides() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert_eq!(resolve_threads(None), configured_threads());
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global() as *const Runtime;
        let b = global() as *const Runtime;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }
}
