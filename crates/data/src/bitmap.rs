//! Dense, fixed-capacity bitmaps.
//!
//! [`Bitmap`] is the dense set kernel of the workspace: transactions store
//! their items in bitmaps, and every *tidset* (set of transaction ids —
//! mining intersections, cover-state columns, seed caches) uses a bitmap
//! as the dense half of the adaptive [`crate::tidset::Tidset`]
//! representation. All hot set operations (intersection, union,
//! difference, xor, popcount) are word-parallel over `u64` limbs.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A dense bitmap over the fixed universe `0..capacity`.
///
/// The capacity is set at construction time and never changes; all binary
/// operations require both operands to share the same capacity (checked with
/// `debug_assert!` on the hot paths, so release builds pay nothing).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    words: Vec<u64>,
    capacity: usize,
}

#[inline]
fn word_count(capacity: usize) -> usize {
    capacity.div_ceil(WORD_BITS)
}

impl Bitmap {
    /// Creates an empty bitmap over the universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Bitmap {
            words: vec![0; word_count(capacity)],
            capacity,
        }
    }

    /// Creates a bitmap with every bit in `0..capacity` set.
    pub fn full(capacity: usize) -> Self {
        let mut bm = Bitmap {
            words: vec![!0u64; word_count(capacity)],
            capacity,
        };
        bm.trim_tail();
        bm
    }

    /// Creates a bitmap from an iterator of bit indices.
    ///
    /// # Panics
    /// Panics if any index is `>= capacity`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, indices: I) -> Self {
        let mut bm = Bitmap::new(capacity);
        for i in indices {
            bm.insert(i);
        }
        bm
    }

    /// Clears any bits beyond `capacity` in the final word.
    #[inline]
    fn trim_tail(&mut self) {
        let rem = self.capacity % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// The size of the universe this bitmap ranges over.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of set bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `i >= capacity`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity, "bit {i} out of range {}", self.capacity);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i`. Returns `true` if the bit was newly set.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bit {i} out of range {}", self.capacity);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was = *w & mask != 0;
        *w |= mask;
        !was
    }

    /// Clears bit `i`. Returns `true` if the bit was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bit {i} out of range {}", self.capacity);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was = *w & mask != 0;
        *w &= !mask;
        was
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Copies the contents of `other` into `self` without reallocating.
    ///
    /// The in-place analogue of `*self = other.clone()` for hot paths that
    /// reuse one scratch bitmap across many operations.
    #[inline]
    pub fn copy_from(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.copy_from_slice(&other.words);
    }

    /// Writes `self & other` into `out` without allocating.
    ///
    /// The miners use this to materialise a surviving child tidset after a
    /// [`Bitmap::intersection_len`] support check has already passed.
    #[inline]
    pub fn and_into(&self, other: &Bitmap, out: &mut Bitmap) {
        debug_assert_eq!(self.capacity, other.capacity);
        debug_assert_eq!(self.capacity, out.capacity);
        for ((o, a), b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            *o = a & b;
        }
    }

    /// In-place intersection: `self &= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union: `self |= other`.
    #[inline]
    pub fn union_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place symmetric difference: `self ^= other`.
    #[inline]
    pub fn xor_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// In-place difference: `self &= !other`.
    #[inline]
    pub fn subtract(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Allocating intersection.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Allocating union.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Allocating symmetric difference.
    pub fn xor(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.xor_with(other);
        out
    }

    /// Allocating difference (`self \ other`).
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.subtract(other);
        out
    }

    /// `|self ∩ other|` without allocating.
    #[inline]
    pub fn intersection_len(&self, other: &Bitmap) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|` without allocating.
    #[inline]
    pub fn union_len(&self, other: &Bitmap) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// `|self \ other|` without allocating.
    #[inline]
    pub fn difference_len(&self, other: &Bitmap) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// `|self ∩ b ∩ ¬c|` in one fused pass, without allocating.
    ///
    /// This is the *hit* kernel of the columnar cover state: with `self` an
    /// antecedent tidset, `b` an item's support tidset and `c` the item's
    /// covered-tids column, it counts the transactions where firing the rule
    /// newly covers the item.
    #[inline]
    pub fn and_and_not_len(&self, b: &Bitmap, c: &Bitmap) -> usize {
        debug_assert_eq!(self.capacity, b.capacity);
        debug_assert_eq!(self.capacity, c.capacity);
        self.words
            .iter()
            .zip(&b.words)
            .zip(&c.words)
            .map(|((x, y), z)| (x & y & !z).count_ones() as usize)
            .sum()
    }

    /// `|self ∩ ¬b ∩ ¬c|` in one fused pass, without allocating.
    ///
    /// The *miss* kernel of the columnar cover state: with `self` an
    /// antecedent tidset, `b` an item's support tidset and `c` the item's
    /// error-tids column, it counts the transactions where firing the rule
    /// introduces a fresh error for the item.
    ///
    /// Both masks are complemented, so stray bits beyond `capacity` would
    /// survive `!b & !c`; `self` is always tail-trimmed by construction,
    /// which masks them out.
    #[inline]
    pub fn and_not_not_len(&self, b: &Bitmap, c: &Bitmap) -> usize {
        debug_assert_eq!(self.capacity, b.capacity);
        debug_assert_eq!(self.capacity, c.capacity);
        self.words
            .iter()
            .zip(&b.words)
            .zip(&c.words)
            .map(|((x, y), z)| (x & !y & !z).count_ones() as usize)
            .sum()
    }

    /// `true` iff `self ∩ other = ∅`, without allocating.
    #[inline]
    pub fn is_disjoint(&self, other: &Bitmap) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `true` iff `self ⊆ other`, without allocating.
    #[inline]
    pub fn is_subset(&self, other: &Bitmap) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` iff `(self ∩ other) ⊆ of`, without allocating.
    ///
    /// Lets the closed miner run its duplicate and absorption checks on
    /// `tid(P) ∩ tid(i)` before that child tidset is ever materialised.
    #[inline]
    pub fn and_is_subset(&self, other: &Bitmap, of: &Bitmap) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        debug_assert_eq!(self.capacity, of.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .zip(&of.words)
            .all(|((a, b), c)| a & b & !c == 0)
    }

    /// `Σ weights[i]` over the set bits, without allocating.
    ///
    /// This is the MDL workhorse: with per-item Shannon code lengths as
    /// `weights` it computes `L(row | D_side)` in one pass, and with `tub`
    /// columns as `weights` it is the inner sum of the `rub` bound.
    ///
    /// Word-parallel gather kernel: zero words are skipped with a single
    /// compare, each non-zero word gathers its weights from a per-word
    /// 64-slot slice (one add to form the base index instead of a full
    /// division per bit), and two accumulators break the floating-point
    /// add dependency chain so dense words keep both FMA pipes busy. The
    /// summation *order* over the set bits is unchanged up to the final
    /// pairwise combine, and the result is deterministic for a given
    /// bitmap and weights.
    ///
    /// # Panics
    /// Panics if `weights` is shorter than the highest set bit requires.
    #[inline]
    pub fn weighted_len(&self, weights: &[f64]) -> f64 {
        let mut even = 0.0f64;
        let mut odd = 0.0f64;
        for (wi, &word) in self.words.iter().enumerate() {
            if word == 0 {
                continue;
            }
            let ws = &weights[wi * WORD_BITS..];
            let mut bits = word;
            while bits != 0 {
                let a = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                even += ws[a];
                if bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    odd += ws[b];
                }
            }
        }
        even + odd
    }

    /// `Σ weights[i]` over `self \ other`, without allocating.
    #[inline]
    pub fn difference_weight(&self, other: &Bitmap, weights: &[f64]) -> f64 {
        self.iter_and_not(other).map(|i| weights[i]).sum()
    }

    /// Iterates the bits of `self ∩ other` without materialising the
    /// intersection.
    pub fn iter_and<'a>(&'a self, other: &'a Bitmap) -> MaskedBitIter<'a> {
        debug_assert_eq!(self.capacity, other.capacity);
        MaskedBitIter::new(&self.words, &other.words, false)
    }

    /// Iterates the bits of `self \ other` without materialising the
    /// difference.
    pub fn iter_and_not<'a>(&'a self, other: &'a Bitmap) -> MaskedBitIter<'a> {
        debug_assert_eq!(self.capacity, other.capacity);
        MaskedBitIter::new(&self.words, &other.words, true)
    }

    /// Jaccard coefficient `|A∩B| / |A∪B|`; `0.0` when both sets are empty.
    pub fn jaccard(&self, other: &Bitmap) -> f64 {
        let union = self.union_len(other);
        if union == 0 {
            0.0
        } else {
            self.intersection_len(other) as f64 / union as f64
        }
    }

    /// Iterates over set bits in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the set bits into a vector (ascending order).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The smallest set bit, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// A stable 64-bit fingerprint of the contents (FNV-1a over the words).
    ///
    /// Used by the closed-itemset miner to bucket candidate tidsets before
    /// running exact subsumption checks.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in &self.words {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The raw storage words — the run container's word-masked kernels
    /// combine per-run masks with these directly.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from its raw words (the snapshot codec's dense
    /// decode path). Returns `None` unless the word count matches the
    /// capacity exactly and every bit beyond `capacity` in the final word
    /// is clear — the same invariants every constructor maintains, so a
    /// decoded bitmap is indistinguishable from a built one.
    pub(crate) fn from_words(capacity: usize, words: Vec<u64>) -> Option<Self> {
        if words.len() != word_count(capacity) {
            return None;
        }
        let bm = Bitmap { words, capacity };
        let rem = capacity % WORD_BITS;
        if rem != 0 {
            if let Some(&last) = bm.words.last() {
                if last & !((1u64 << rem) - 1) != 0 {
                    return None;
                }
            }
        }
        Some(bm)
    }

    /// Visits every word index overlapping `[start, end)` together with the
    /// mask of in-range bits — the shared loop of the range kernels below.
    #[inline]
    fn for_each_range_word(start: usize, end: usize, mut f: impl FnMut(usize, u64)) {
        debug_assert!(start <= end);
        let mut pos = start;
        while pos < end {
            let wi = pos / WORD_BITS;
            let word_end = ((wi + 1) * WORD_BITS).min(end);
            let len = word_end - pos;
            let mask = if len == WORD_BITS {
                !0u64
            } else {
                ((1u64 << len) - 1) << (pos % WORD_BITS)
            };
            f(wi, mask);
            pos = word_end;
        }
    }

    /// `|self ∩ [start, end)|`: popcount of the set bits inside the
    /// half-open range, word-masked (no per-bit probing).
    #[inline]
    pub fn range_len(&self, start: usize, end: usize) -> usize {
        debug_assert!(end <= self.capacity);
        let mut count = 0usize;
        Self::for_each_range_word(start, end, |wi, mask| {
            count += (self.words[wi] & mask).count_ones() as usize;
        });
        count
    }

    /// `true` iff any bit in `[start, end)` is set (early exit per word).
    #[inline]
    pub fn range_intersects(&self, start: usize, end: usize) -> bool {
        debug_assert!(end <= self.capacity);
        let mut pos = start;
        while pos < end {
            let wi = pos / WORD_BITS;
            let word_end = ((wi + 1) * WORD_BITS).min(end);
            let len = word_end - pos;
            let mask = if len == WORD_BITS {
                !0u64
            } else {
                ((1u64 << len) - 1) << (pos % WORD_BITS)
            };
            if self.words[wi] & mask != 0 {
                return true;
            }
            pos = word_end;
        }
        false
    }

    /// `|self ∩ other ∩ [start, end)|` in one word-masked pass.
    #[inline]
    pub fn intersection_len_range(&self, other: &Bitmap, start: usize, end: usize) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        debug_assert!(end <= self.capacity);
        let mut count = 0usize;
        Self::for_each_range_word(start, end, |wi, mask| {
            count += (self.words[wi] & other.words[wi] & mask).count_ones() as usize;
        });
        count
    }

    /// `|self ∩ ¬other ∩ [start, end)|` in one word-masked pass.
    #[inline]
    pub fn difference_len_range(&self, other: &Bitmap, start: usize, end: usize) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        debug_assert!(end <= self.capacity);
        let mut count = 0usize;
        Self::for_each_range_word(start, end, |wi, mask| {
            count += (self.words[wi] & !other.words[wi] & mask).count_ones() as usize;
        });
        count
    }

    /// Sets every bit in `[start, end)` — one masked OR per word, the dense
    /// half of `dense ∪ runs`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `end > capacity`.
    #[inline]
    pub fn insert_range(&mut self, start: usize, end: usize) {
        debug_assert!(end <= self.capacity);
        let words = &mut self.words;
        Self::for_each_range_word(start, end, |wi, mask| {
            words[wi] |= mask;
        });
    }

    /// Clears every bit in `[start, end)` — one masked AND per word, the
    /// dense half of `dense \ runs`.
    #[inline]
    pub fn remove_range(&mut self, start: usize, end: usize) {
        debug_assert!(end <= self.capacity);
        let words = &mut self.words;
        Self::for_each_range_word(start, end, |wi, mask| {
            words[wi] &= !mask;
        });
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for Bitmap {
    /// Builds a bitmap whose capacity is one past the largest index.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let capacity = indices.iter().copied().max().map_or(0, |m| m + 1);
        Bitmap::from_indices(capacity, indices)
    }
}

/// Iterator over the set bits of a [`Bitmap`].
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + tz)
    }
}

/// Iterator over the bits of `a ∩ b` or `a \ b` (see [`Bitmap::iter_and`]
/// and [`Bitmap::iter_and_not`]), masking word by word.
pub struct MaskedBitIter<'a> {
    a: &'a [u64],
    b: &'a [u64],
    invert_b: bool,
    word_idx: usize,
    current: u64,
}

impl<'a> MaskedBitIter<'a> {
    fn new(a: &'a [u64], b: &'a [u64], invert_b: bool) -> Self {
        let current = match (a.first(), b.first()) {
            (Some(&wa), Some(&wb)) => {
                if invert_b {
                    wa & !wb
                } else {
                    wa & wb
                }
            }
            _ => 0,
        };
        MaskedBitIter {
            a,
            b,
            invert_b,
            word_idx: 0,
            current,
        }
    }
}

impl Iterator for MaskedBitIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.a.len() {
                return None;
            }
            let wb = self.b[self.word_idx];
            self.current = self.a[self.word_idx] & if self.invert_b { !wb } else { wb };
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let bm = Bitmap::new(100);
        assert!(bm.is_empty());
        assert_eq!(bm.len(), 0);
        assert_eq!(bm.capacity(), 100);
    }

    #[test]
    fn full_sets_exactly_capacity_bits() {
        for cap in [0, 1, 63, 64, 65, 128, 130] {
            let bm = Bitmap::full(cap);
            assert_eq!(bm.len(), cap, "capacity {cap}");
            assert_eq!(bm.to_vec(), (0..cap).collect::<Vec<_>>());
        }
    }

    #[test]
    fn insert_remove_contains() {
        let mut bm = Bitmap::new(70);
        assert!(bm.insert(0));
        assert!(bm.insert(69));
        assert!(!bm.insert(69), "second insert reports no change");
        assert!(bm.contains(0));
        assert!(bm.contains(69));
        assert!(!bm.contains(1));
        assert!(bm.remove(69));
        assert!(!bm.remove(69), "second remove reports no change");
        assert!(!bm.contains(69));
        assert_eq!(bm.len(), 1);
    }

    #[test]
    #[should_panic]
    fn insert_out_of_range_panics() {
        let mut bm = Bitmap::new(10);
        bm.insert(10);
    }

    #[test]
    fn set_algebra() {
        let a = Bitmap::from_indices(130, [1, 5, 64, 100]);
        let b = Bitmap::from_indices(130, [5, 64, 65, 129]);
        assert_eq!(a.and(&b).to_vec(), vec![5, 64]);
        assert_eq!(a.or(&b).to_vec(), vec![1, 5, 64, 65, 100, 129]);
        assert_eq!(a.xor(&b).to_vec(), vec![1, 65, 100, 129]);
        assert_eq!(a.and_not(&b).to_vec(), vec![1, 100]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.union_len(&b), 6);
        assert_eq!(a.difference_len(&b), 2);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = Bitmap::from_indices(80, [3, 70]);
        let b = Bitmap::from_indices(80, [3, 50, 70]);
        let c = Bitmap::from_indices(80, [9]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(Bitmap::new(80).is_subset(&a), "empty set is subset of all");
    }

    #[test]
    fn jaccard_values() {
        let a = Bitmap::from_indices(10, [0, 1, 2]);
        let b = Bitmap::from_indices(10, [1, 2, 3]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert_eq!(Bitmap::new(10).jaccard(&Bitmap::new(10)), 0.0);
        assert_eq!(a.jaccard(&a), 1.0);
    }

    #[test]
    fn iterator_crosses_word_boundaries() {
        let idx = vec![0, 63, 64, 127, 128, 191];
        let bm = Bitmap::from_indices(192, idx.clone());
        assert_eq!(bm.to_vec(), idx);
        assert_eq!(bm.first(), Some(0));
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let bm: Bitmap = [3usize, 7, 2].into_iter().collect();
        assert_eq!(bm.capacity(), 8);
        assert_eq!(bm.to_vec(), vec![2, 3, 7]);
        let empty: Bitmap = std::iter::empty::<usize>().collect();
        assert_eq!(empty.capacity(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn fingerprint_distinguishes_and_matches() {
        let a = Bitmap::from_indices(100, [1, 2, 3]);
        let b = Bitmap::from_indices(100, [1, 2, 3]);
        let c = Bitmap::from_indices(100, [1, 2, 4]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn clear_resets() {
        let mut bm = Bitmap::from_indices(40, [0, 39]);
        bm.clear();
        assert!(bm.is_empty());
        assert_eq!(bm.capacity(), 40);
    }

    #[test]
    fn copy_from_and_and_into_match_allocating() {
        let a = Bitmap::from_indices(130, [1, 5, 64, 100]);
        let b = Bitmap::from_indices(130, [5, 64, 65, 129]);
        let mut scratch = Bitmap::new(130);
        scratch.copy_from(&a);
        assert_eq!(scratch, a);
        let mut out = Bitmap::from_indices(130, [0, 128]); // stale contents
        a.and_into(&b, &mut out);
        assert_eq!(out, a.and(&b));
    }

    #[test]
    fn and_is_subset_matches_materialised_check() {
        let a = Bitmap::from_indices(80, [1, 3, 70]);
        let b = Bitmap::from_indices(80, [3, 50, 70]);
        let big = Bitmap::from_indices(80, [3, 50, 70, 79]);
        let small = Bitmap::from_indices(80, [3]);
        assert_eq!(a.and_is_subset(&b, &big), a.and(&b).is_subset(&big));
        assert_eq!(a.and_is_subset(&b, &small), a.and(&b).is_subset(&small));
        assert!(a.and_is_subset(&b, &big));
        assert!(!a.and_is_subset(&b, &small));
    }

    #[test]
    fn masked_iters_match_allocating_ops() {
        let a = Bitmap::from_indices(200, [0, 5, 64, 65, 128, 199]);
        let b = Bitmap::from_indices(200, [5, 64, 100, 199]);
        assert_eq!(
            a.iter_and(&b).collect::<Vec<_>>(),
            a.and(&b).to_vec(),
            "iter_and"
        );
        assert_eq!(
            a.iter_and_not(&b).collect::<Vec<_>>(),
            a.and_not(&b).to_vec(),
            "iter_and_not"
        );
        let empty = Bitmap::new(200);
        assert_eq!(a.iter_and(&empty).count(), 0);
        assert_eq!(a.iter_and_not(&empty).collect::<Vec<_>>(), a.to_vec());
    }

    #[test]
    fn fused_triple_counts_match_materialised() {
        let a = Bitmap::from_indices(200, [0, 5, 63, 64, 65, 128, 199]);
        let b = Bitmap::from_indices(200, [5, 64, 100, 199]);
        let c = Bitmap::from_indices(200, [5, 65, 128]);
        assert_eq!(a.and_and_not_len(&b, &c), a.and(&b).and_not(&c).len());
        assert_eq!(a.and_not_not_len(&b, &c), a.and_not(&b).and_not(&c).len());
        let empty = Bitmap::new(200);
        assert_eq!(a.and_and_not_len(&empty, &empty), 0);
        assert_eq!(a.and_not_not_len(&empty, &empty), a.len());
        // Capacity not a word multiple: complements must not leak tail bits.
        let x = Bitmap::from_indices(70, [0, 69]);
        let none = Bitmap::new(70);
        assert_eq!(x.and_not_not_len(&none, &none), 2);
        assert_eq!(Bitmap::full(70).and_not_not_len(&none, &none), 70);
    }

    #[test]
    fn weighted_kernel_matches_bitwise_sum() {
        // Pseudo-random weights + bit patterns across word boundaries: the
        // gather kernel must agree with the naive per-bit sum to fp
        // accumulation-order tolerance, for dense and sparse words alike.
        let cap = 321; // not a word multiple
        let weights: Vec<f64> = (0..cap)
            .map(|i| ((i * 37 + 11) % 101) as f64 * 0.125)
            .collect();
        for (stride, offset) in [(1, 0), (2, 1), (3, 0), (7, 5), (63, 2), (64, 0), (65, 1)] {
            let bm = Bitmap::from_indices(cap, (offset..cap).step_by(stride));
            let naive: f64 = bm.iter().map(|i| weights[i]).sum();
            let kernel = bm.weighted_len(&weights);
            assert!(
                (kernel - naive).abs() < 1e-9 * (1.0 + naive.abs()),
                "stride {stride}: kernel {kernel} vs naive {naive}"
            );
        }
        assert_eq!(Bitmap::new(cap).weighted_len(&weights), 0.0);
        let full = Bitmap::full(cap);
        let total: f64 = weights.iter().sum();
        assert!((full.weighted_len(&weights) - total).abs() < 1e-9);
    }

    #[test]
    fn weighted_ops_sum_the_right_bits() {
        let weights: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let a = Bitmap::from_indices(10, [1, 4, 9]);
        let b = Bitmap::from_indices(10, [4]);
        assert!((a.weighted_len(&weights) - 14.0).abs() < 1e-12);
        assert!((a.difference_weight(&b, &weights) - 10.0).abs() < 1e-12);
        assert_eq!(Bitmap::new(10).weighted_len(&weights), 0.0);
    }

    #[test]
    fn range_kernels_match_per_bit_reference() {
        let cap = 200;
        let a = Bitmap::from_indices(cap, (0..cap).filter(|i| i % 3 == 0));
        let b = Bitmap::from_indices(cap, (0..cap).filter(|i| i % 4 == 1 || i % 7 == 0));
        for (start, end) in [
            (0, 0),
            (0, 1),
            (0, 64),
            (3, 66),
            (64, 128),
            (5, 199),
            (0, 200),
        ] {
            let in_range = |i: &usize| (start..end).contains(i);
            assert_eq!(
                a.range_len(start, end),
                a.to_vec().iter().filter(|i| in_range(i)).count(),
                "range_len [{start},{end})"
            );
            assert_eq!(
                a.range_intersects(start, end),
                a.to_vec().iter().any(&in_range),
                "range_intersects [{start},{end})"
            );
            assert_eq!(
                a.intersection_len_range(&b, start, end),
                a.and(&b).to_vec().iter().filter(|i| in_range(i)).count(),
                "intersection_len_range [{start},{end})"
            );
            assert_eq!(
                a.difference_len_range(&b, start, end),
                a.and_not(&b)
                    .to_vec()
                    .iter()
                    .filter(|i| in_range(i))
                    .count(),
                "difference_len_range [{start},{end})"
            );
            let mut ins = a.clone();
            ins.insert_range(start, end);
            let mut expect = a.clone();
            for i in start..end {
                expect.insert(i);
            }
            assert_eq!(ins, expect, "insert_range [{start},{end})");
            let mut rem = a.clone();
            rem.remove_range(start, end);
            let mut expect = a.clone();
            for i in start..end {
                expect.remove(i);
            }
            assert_eq!(rem, expect, "remove_range [{start},{end})");
        }
    }

    #[test]
    fn in_place_ops_match_allocating() {
        let a = Bitmap::from_indices(70, [0, 10, 65]);
        let b = Bitmap::from_indices(70, [10, 20, 65]);
        let mut x = a.clone();
        x.intersect_with(&b);
        assert_eq!(x, a.and(&b));
        let mut y = a.clone();
        y.union_with(&b);
        assert_eq!(y, a.or(&b));
        let mut z = a.clone();
        z.xor_with(&b);
        assert_eq!(z, a.xor(&b));
        let mut w = a.clone();
        w.subtract(&b);
        assert_eq!(w, a.and_not(&b));
    }
}
