//! The Boolean two-view dataset: row store, per-item tidsets, statistics.

use crate::bitmap::Bitmap;
use crate::items::{ItemId, ItemSet, Side, Vocabulary};
use crate::tidset::Tidset;

/// A Boolean two-view dataset `D = (D_L, D_R)`.
///
/// Storage is dual:
/// * **row store** — one bitmap per transaction and side, indexed by the
///   item's *local* (per-side) index; used by translation, cover state and
///   gain computation;
/// * **column store** — one adaptive sparse/dense [`Tidset`] per global
///   item over `0..|D|`; used by all miners and by support queries. The
///   representation per column follows the item's support (see
///   [`crate::tidset`]), which is what makes large-sparse corpora pay
///   word-proportional instead of corpus-proportional set-op costs.
///
/// Both are built once at construction; the dataset is immutable afterwards.
#[derive(Clone, Debug)]
pub struct TwoViewDataset {
    vocab: Vocabulary,
    rows_left: Vec<Bitmap>,
    rows_right: Vec<Bitmap>,
    tidsets: Vec<Tidset>,
    supports: Vec<usize>,
    name: String,
}

impl TwoViewDataset {
    /// Builds a dataset from per-transaction global item id lists.
    ///
    /// # Panics
    /// Panics if a transaction references an item outside the vocabulary.
    pub fn from_transactions(vocab: Vocabulary, transactions: &[Vec<ItemId>]) -> TwoViewDataset {
        let n = transactions.len();
        let (nl, nr) = (vocab.n_left(), vocab.n_right());
        let mut rows_left = vec![Bitmap::new(nl); n];
        let mut rows_right = vec![Bitmap::new(nr); n];
        // Tids arrive in ascending transaction order, so each column is
        // collected as a sorted list and handed to the adaptive Tidset
        // constructor, which picks sparse or dense per column.
        let mut columns: Vec<Vec<u32>> = vec![Vec::new(); vocab.n_items()];
        for (t, items) in transactions.iter().enumerate() {
            for &item in items {
                assert!(
                    (item as usize) < vocab.n_items(),
                    "item {item} outside vocabulary"
                );
                match vocab.side_of(item) {
                    Side::Left => rows_left[t].insert(vocab.local_index(item)),
                    Side::Right => rows_right[t].insert(vocab.local_index(item)),
                };
                let col = &mut columns[item as usize];
                if col.last() != Some(&(t as u32)) {
                    col.push(t as u32);
                }
            }
        }
        let tidsets: Vec<Tidset> = columns
            .into_iter()
            .map(|col| Tidset::from_sorted(n, col))
            .collect();
        let supports = tidsets.iter().map(Tidset::len).collect();
        TwoViewDataset {
            vocab,
            rows_left,
            rows_right,
            tidsets,
            supports,
            name: String::new(),
        }
    }

    /// Attaches a human-readable dataset name (used in reports).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The dataset name (empty if unset).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The item universe.
    #[inline]
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of transactions `|D|`.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.rows_left.len()
    }

    /// The row bitmap of transaction `t` on `side` (local item indices).
    #[inline]
    pub fn row(&self, side: Side, t: usize) -> &Bitmap {
        match side {
            Side::Left => &self.rows_left[t],
            Side::Right => &self.rows_right[t],
        }
    }

    /// All rows of one side.
    #[inline]
    pub fn rows(&self, side: Side) -> &[Bitmap] {
        match side {
            Side::Left => &self.rows_left,
            Side::Right => &self.rows_right,
        }
    }

    /// Whether transaction `t` contains the (global) `item`.
    #[inline]
    pub fn transaction_contains(&self, t: usize, item: ItemId) -> bool {
        let local = self.vocab.local_index(item);
        self.row(self.vocab.side_of(item), t).contains(local)
    }

    /// The tidset of a (global) item: transactions in which it occurs.
    #[inline]
    pub fn tidset(&self, item: ItemId) -> &Tidset {
        &self.tidsets[item as usize]
    }

    /// The tidset of the `local`-th item of `side` — the per-item *column*
    /// view of the data the columnar cover state works on.
    ///
    /// Equivalent to `self.tidset(vocab.global_id(side, local))` without the
    /// caller having to translate indices.
    #[inline]
    pub fn column(&self, side: Side, local: usize) -> &Tidset {
        &self.tidsets[self.vocab.global_id(side, local) as usize]
    }

    /// `|supp(item)|`.
    #[inline]
    pub fn support(&self, item: ItemId) -> usize {
        self.supports[item as usize]
    }

    /// The support tidset of an itemset (intersection of item tidsets).
    ///
    /// The empty itemset is supported by every transaction. Intersections
    /// run in whichever representation is cheaper and the accumulator
    /// demotes to sparse as it shrinks.
    pub fn support_set(&self, items: &ItemSet) -> Tidset {
        let mut iter = items.iter();
        match iter.next() {
            None => Tidset::full(self.n_transactions()),
            Some(first) => {
                let mut acc = self.tidsets[first as usize].clone();
                for item in iter {
                    acc.intersect_with(&self.tidsets[item as usize]);
                }
                acc
            }
        }
    }

    /// `|supp(items)|` (allocates one intermediate bitmap for |items| ≥ 2).
    pub fn support_count(&self, items: &ItemSet) -> usize {
        match items.len() {
            0 => self.n_transactions(),
            1 => self.supports[items.as_slice()[0] as usize],
            _ => self.support_set(items).len(),
        }
    }

    /// Total number of ones on `side`.
    pub fn ones(&self, side: Side) -> usize {
        self.vocab
            .items_on(side)
            .map(|i| self.supports[i as usize])
            .sum()
    }

    /// Density of `side`: ones / (|D| * items on side). Zero for degenerate
    /// empty dimensions.
    pub fn density(&self, side: Side) -> f64 {
        let cells = self.n_transactions() * self.vocab.n_on(side);
        if cells == 0 {
            0.0
        } else {
            self.ones(side) as f64 / cells as f64
        }
    }

    /// The items of transaction `t` as global ids (both sides).
    pub fn transaction_items(&self, t: usize) -> ItemSet {
        let mut v: Vec<ItemId> = self.rows_left[t]
            .iter()
            .map(|l| self.vocab.global_id(Side::Left, l))
            .collect();
        v.extend(
            self.rows_right[t]
                .iter()
                .map(|l| self.vocab.global_id(Side::Right, l)),
        );
        ItemSet::from_sorted(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 transactions over a 3+2 vocabulary:
    /// t0: {a, b | x}   t1: {a | y}   t2: {b, c | x, y}   t3: {|}
    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[vec![0, 1, 3], vec![0, 4], vec![1, 2, 3, 4], vec![]],
        )
    }

    #[test]
    fn shape_and_rows() {
        let d = toy();
        assert_eq!(d.n_transactions(), 4);
        assert_eq!(d.row(Side::Left, 0).to_vec(), vec![0, 1]);
        assert_eq!(d.row(Side::Right, 0).to_vec(), vec![0]);
        assert_eq!(d.row(Side::Right, 2).to_vec(), vec![0, 1]);
        assert!(d.row(Side::Left, 3).is_empty());
        assert!(d.transaction_contains(0, 3));
        assert!(!d.transaction_contains(1, 3));
    }

    #[test]
    fn tidsets_and_supports() {
        let d = toy();
        assert_eq!(d.tidset(0).to_vec(), vec![0, 1]); // a
        assert_eq!(d.tidset(3).to_vec(), vec![0, 2]); // x
        assert_eq!(d.support(4), 2); // y
        assert_eq!(d.support(2), 1); // c
    }

    #[test]
    fn columns_are_local_index_tidsets() {
        let d = toy();
        assert_eq!(d.column(Side::Left, 0), d.tidset(0)); // a
        assert_eq!(d.column(Side::Left, 2), d.tidset(2)); // c
        assert_eq!(d.column(Side::Right, 0), d.tidset(3)); // x
        assert_eq!(d.column(Side::Right, 1).to_vec(), vec![1, 2]); // y
    }

    #[test]
    fn itemset_support() {
        let d = toy();
        let ab = ItemSet::from_items([0, 1]);
        assert_eq!(d.support_set(&ab).to_vec(), vec![0]);
        assert_eq!(d.support_count(&ab), 1);
        let bx = ItemSet::from_items([1, 3]);
        assert_eq!(d.support_set(&bx).to_vec(), vec![0, 2]);
        assert_eq!(d.support_count(&ItemSet::empty()), 4);
        assert_eq!(
            d.support_set(&ItemSet::empty()).to_vec(),
            vec![0, 1, 2, 3],
            "empty itemset occurs everywhere"
        );
    }

    #[test]
    fn densities() {
        let d = toy();
        // left ones: a=2, b=2, c=1 => 5 of 12 cells
        assert!((d.density(Side::Left) - 5.0 / 12.0).abs() < 1e-12);
        // right ones: x=2, y=2 => 4 of 8 cells
        assert!((d.density(Side::Right) - 0.5).abs() < 1e-12);
        assert_eq!(d.ones(Side::Left), 5);
        assert_eq!(d.ones(Side::Right), 4);
    }

    #[test]
    fn transaction_items_roundtrip() {
        let d = toy();
        assert_eq!(d.transaction_items(2).as_slice(), &[1, 2, 3, 4]);
        assert!(d.transaction_items(3).is_empty());
    }

    #[test]
    fn named_dataset() {
        let d = toy().with_name("toy");
        assert_eq!(d.name(), "toy");
    }
}
