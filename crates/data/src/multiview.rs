//! Multi-view data: the k-view generalisation the paper names as future
//! work (§7, "extending this approach to … cases with more than two
//! views").
//!
//! A [`MultiViewDataset`] holds `k ≥ 2` item vocabularies over the same
//! objects. Any ordered pair of views projects to a standard
//! [`TwoViewDataset`], so the entire two-view machinery (mining,
//! TRANSLATOR, MDL scoring) lifts to the multi-view setting pairwise — the
//! natural first-order generalisation, implemented in
//! `twoview_core::multiview`.

use crate::dataset::TwoViewDataset;
use crate::error::DataError;
use crate::items::Vocabulary;

/// A Boolean dataset with `k` named views over the same objects.
#[derive(Clone, Debug)]
pub struct MultiViewDataset {
    view_names: Vec<String>,
    /// Per view: item names.
    item_names: Vec<Vec<String>>,
    /// Per view, per object: ascending local item indices.
    rows: Vec<Vec<Vec<usize>>>,
    n_objects: usize,
}

impl MultiViewDataset {
    /// Builds a multi-view dataset.
    ///
    /// `views` maps each view to its item names and per-object rows (local
    /// item indices).
    ///
    /// # Errors
    /// Requires ≥ 2 views, equal object counts, and in-range item indices.
    pub fn new(
        views: Vec<(String, Vec<String>, Vec<Vec<usize>>)>,
    ) -> Result<MultiViewDataset, DataError> {
        if views.len() < 2 {
            return Err(DataError::Config("need at least two views".into()));
        }
        let n_objects = views[0].2.len();
        for (name, items, rows) in &views {
            if rows.len() != n_objects {
                return Err(DataError::Config(format!(
                    "view {name:?}: {} objects, expected {n_objects}",
                    rows.len()
                )));
            }
            for (t, row) in rows.iter().enumerate() {
                if let Some(&bad) = row.iter().find(|&&i| i >= items.len()) {
                    return Err(DataError::Format(format!(
                        "view {name:?}, object {t}: item {bad} out of range {}",
                        items.len()
                    )));
                }
            }
        }
        let mut view_names = Vec::new();
        let mut item_names = Vec::new();
        let mut rows = Vec::new();
        for (name, items, r) in views {
            view_names.push(name);
            item_names.push(items);
            rows.push(r);
        }
        Ok(MultiViewDataset {
            view_names,
            item_names,
            rows,
            n_objects,
        })
    }

    /// Number of views `k`.
    pub fn n_views(&self) -> usize {
        self.view_names.len()
    }

    /// Number of objects.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// The name of view `v`.
    pub fn view_name(&self, v: usize) -> &str {
        &self.view_names[v]
    }

    /// Number of items in view `v`.
    pub fn n_items(&self, v: usize) -> usize {
        self.item_names[v].len()
    }

    /// Projects views `(a, b)` onto a [`TwoViewDataset`] (`a` becomes the
    /// left view). Item names are prefixed with the view name to keep the
    /// joint vocabulary collision-free.
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of range.
    pub fn pair(&self, a: usize, b: usize) -> TwoViewDataset {
        assert!(a != b, "a pair needs two distinct views");
        let prefix = |v: usize| -> Vec<String> {
            self.item_names[v]
                .iter()
                .map(|n| format!("{}:{}", self.view_names[v], n))
                .collect()
        };
        let vocab = Vocabulary::new(prefix(a), prefix(b));
        let n_left = self.item_names[a].len();
        let transactions: Vec<Vec<crate::items::ItemId>> = (0..self.n_objects)
            .map(|t| {
                let mut items: Vec<crate::items::ItemId> = self.rows[a][t]
                    .iter()
                    .map(|&i| i as crate::items::ItemId)
                    .collect();
                items.extend(
                    self.rows[b][t]
                        .iter()
                        .map(|&i| (n_left + i) as crate::items::ItemId),
                );
                items
            })
            .collect();
        TwoViewDataset::from_transactions(vocab, &transactions)
            .with_name(format!("{}~{}", self.view_names[a], self.view_names[b]))
    }

    /// All unordered view pairs `(a, b)` with `a < b`.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let k = self.n_views();
        let mut out = Vec::with_capacity(k * (k - 1) / 2);
        for a in 0..k {
            for b in a + 1..k {
                out.push((a, b));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::Side;

    fn three_views() -> MultiViewDataset {
        MultiViewDataset::new(vec![
            (
                "demo".into(),
                vec!["young".into(), "old".into()],
                vec![vec![0], vec![0], vec![1], vec![1]],
            ),
            (
                "medical".into(),
                vec!["healthy".into(), "frail".into()],
                vec![vec![0], vec![0], vec![1], vec![1]],
            ),
            (
                "habits".into(),
                vec!["sports".into()],
                vec![vec![0], vec![0], vec![], vec![]],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let mv = three_views();
        assert_eq!(mv.n_views(), 3);
        assert_eq!(mv.n_objects(), 4);
        assert_eq!(mv.n_items(0), 2);
        assert_eq!(mv.n_items(2), 1);
        assert_eq!(mv.view_name(1), "medical");
        assert_eq!(mv.pairs(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn pair_projection_is_a_valid_two_view_dataset() {
        let mv = three_views();
        let dv = mv.pair(0, 1);
        assert_eq!(dv.n_transactions(), 4);
        assert_eq!(dv.vocab().n_left(), 2);
        assert_eq!(dv.vocab().n_right(), 2);
        assert_eq!(dv.vocab().name(0), "demo:young");
        assert_eq!(dv.vocab().name(2), "medical:healthy");
        // Object 0: young + healthy.
        assert!(dv.transaction_contains(0, 0));
        assert!(dv.transaction_contains(0, 2));
        assert!(!dv.transaction_contains(0, 3));
        assert_eq!(dv.density(Side::Left), 0.5);
    }

    #[test]
    fn pair_order_controls_sides() {
        let mv = three_views();
        let ab = mv.pair(0, 2);
        let ba = mv.pair(2, 0);
        assert_eq!(ab.vocab().n_left(), 2);
        assert_eq!(ba.vocab().n_left(), 1);
        assert_eq!(ba.vocab().name(0), "habits:sports");
    }

    #[test]
    fn validation_errors() {
        assert!(
            MultiViewDataset::new(vec![("only".into(), vec!["a".into()], vec![vec![0]],)]).is_err()
        );
        assert!(MultiViewDataset::new(vec![
            ("a".into(), vec!["x".into()], vec![vec![0]]),
            ("b".into(), vec!["y".into()], vec![vec![0], vec![0]]),
        ])
        .is_err());
        assert!(MultiViewDataset::new(vec![
            ("a".into(), vec!["x".into()], vec![vec![7]]),
            ("b".into(), vec!["y".into()], vec![vec![0]]),
        ])
        .is_err());
    }

    #[test]
    #[should_panic(expected = "distinct views")]
    fn same_view_pair_panics() {
        three_views().pair(1, 1);
    }
}
