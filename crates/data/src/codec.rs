//! Byte-level kernel of the binary snapshot format.
//!
//! The persistence layer (`twoview::persist` in the core crate) frames a
//! snapshot as checksummed sections; this module owns the primitives
//! underneath that framing so the *data* types ([`crate::tidset::Tidset`],
//! whose representation enum is private to its module) can encode and
//! decode themselves without exposing internals:
//!
//! * [`ByteWriter`] — append-only little-endian buffer with
//!   length-prefixed byte strings;
//! * [`ByteReader`] — bounds-checked cursor over a byte slice whose every
//!   read is a `Result` (a truncated or hostile input can never panic or
//!   over-read);
//! * [`crc32`] — the IEEE CRC-32 used for per-section and whole-file
//!   checksums (std-only, table generated at compile time);
//! * [`CodecError`] — the two ways decoding fails: ran out of bytes, or
//!   the bytes violate a format invariant.
//!
//! Everything is deliberately dumb: fixed-width little-endian integers,
//! no varints, no compression. Snapshots are cold-start artifacts read
//! once per process; simplicity and verifiability beat density.

use std::fmt;

/// Why a byte-level decode failed. Both variants are *recoverable* by
/// construction — callers (the snapshot reader) translate them into a
/// rejected-snapshot outcome, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value being read was complete.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The bytes were present but violate a format invariant (bad tag,
    /// unsorted ids, out-of-range value, ...).
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "truncated input: needed {need} bytes, had {have}")
            }
            CodecError::Malformed(why) => write!(f, "malformed input: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// IEEE CRC-32 lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the polynomial used by zip/png/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append-only little-endian encode buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (little-endian), so
    /// round-trips are bit-exact including NaN payloads and signed zeros.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with no length prefix (for fixed-size fields).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far, without consuming the writer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Bounds-checked little-endian decode cursor. Every read returns a
/// [`CodecError`] instead of panicking when the input is short.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current cursor position (bytes consumed).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed every byte.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting values that do
    /// not fit (a 32-bit host reading a hostile 64-bit length).
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Malformed(format!("length {v} overflows usize")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads exactly `n` raw bytes (no length prefix).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a `u64`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|e| CodecError::Malformed(format!("invalid utf-8: {e}")))
    }

    /// Fails unless every byte has been consumed — decoders call this
    /// last so trailing garbage is rejected rather than ignored.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Malformed(format!(
                "{} trailing bytes after value",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn roundtrip_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bytes(b"hello");
        w.put_str("twoview");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        let z = r.get_f64().unwrap();
        assert!(z == 0.0 && z.is_sign_negative(), "signed zero preserved");
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "twoview");
        r.expect_end().unwrap();
    }

    #[test]
    fn short_reads_error_instead_of_panicking() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u8().unwrap(), 1);
        let err = r.get_u64().unwrap_err();
        assert_eq!(err, CodecError::Truncated { need: 8, have: 2 });
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // length prefix far beyond the buffer
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn expect_end_rejects_trailing_garbage() {
        let mut r = ByteReader::new(&[0]);
        assert!(r.expect_end().is_err());
        r.get_u8().unwrap();
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(CodecError::Malformed(_))));
    }
}
