//! Error types for the data substrate.

use std::fmt;

/// Errors produced when loading or constructing datasets.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input violated the `.2v` format.
    Format(String),
    /// A configuration value was out of range.
    Config(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Format(m) => write!(f, "format error: {m}"),
            DataError::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let io = DataError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(DataError::Format("bad".into()).to_string().contains("bad"));
        assert!(DataError::Config("oops".into())
            .to_string()
            .contains("oops"));
    }
}
