//! Plain-text persistence for two-view datasets (the `.2v` format).
//!
//! The format is line-oriented and human-editable:
//!
//! ```text
//! #2v1                     <- magic header
//! # free-form comments
//! L name1 name2 ...        <- left vocabulary (whitespace-separated names)
//! R name1 name2 ...        <- right vocabulary
//! T a b | x y              <- one transaction per line: left items | right items
//! T | x                    <- either side may be empty
//! ```
//!
//! Item names must not contain whitespace or `|`; the corpus generators use
//! `:`/`=`/`_` separators instead.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::dataset::TwoViewDataset;
use crate::error::DataError;
use crate::items::{ItemId, Side, Vocabulary};

const MAGIC: &str = "#2v1";

/// Serialises `dataset` into the `.2v` text format.
pub fn write_dataset<W: Write>(dataset: &TwoViewDataset, writer: W) -> Result<(), DataError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{MAGIC}")?;
    if !dataset.name().is_empty() {
        writeln!(w, "# name: {}", dataset.name())?;
    }
    let vocab = dataset.vocab();
    for (tag, side) in [("L", Side::Left), ("R", Side::Right)] {
        write!(w, "{tag}")?;
        for item in vocab.items_on(side) {
            write!(w, " {}", vocab.name(item))?;
        }
        writeln!(w)?;
    }
    for t in 0..dataset.n_transactions() {
        write!(w, "T")?;
        for local in dataset.row(Side::Left, t).iter() {
            write!(w, " {}", vocab.name(vocab.global_id(Side::Left, local)))?;
        }
        write!(w, " |")?;
        for local in dataset.row(Side::Right, t).iter() {
            write!(w, " {}", vocab.name(vocab.global_id(Side::Right, local)))?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Parses a dataset from the `.2v` text format.
pub fn read_dataset<R: Read>(reader: R) -> Result<TwoViewDataset, DataError> {
    let mut lines = BufReader::new(reader).lines();
    let first = lines
        .next()
        .ok_or_else(|| DataError::Format("empty input".into()))??;
    if first.trim() != MAGIC {
        return Err(DataError::Format(format!(
            "bad magic: expected {MAGIC:?}, got {:?}",
            first.trim()
        )));
    }

    let mut left: Option<Vec<String>> = None;
    let mut right: Option<Vec<String>> = None;
    let mut name = String::new();
    let mut raw_transactions: Vec<(Vec<String>, Vec<String>)> = Vec::new();

    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let line = line.trim();
        let lineno = lineno + 2; // 1-based, after the magic line
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# name:") {
            name = rest.trim().to_string();
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (tag, rest) = line.split_at(1);
        match tag {
            "L" => left = Some(rest.split_whitespace().map(str::to_string).collect()),
            "R" => right = Some(rest.split_whitespace().map(str::to_string).collect()),
            "T" => {
                let mut parts = rest.splitn(2, '|');
                let l = parts.next().unwrap_or("");
                let r = parts.next().ok_or_else(|| {
                    DataError::Format(format!("line {lineno}: transaction missing '|'"))
                })?;
                raw_transactions.push((
                    l.split_whitespace().map(str::to_string).collect(),
                    r.split_whitespace().map(str::to_string).collect(),
                ));
            }
            other => {
                return Err(DataError::Format(format!(
                    "line {lineno}: unknown record tag {other:?}"
                )))
            }
        }
    }

    let left = left.ok_or_else(|| DataError::Format("missing L vocabulary line".into()))?;
    let right = right.ok_or_else(|| DataError::Format("missing R vocabulary line".into()))?;
    let vocab = Vocabulary::new(left, right);

    let mut transactions: Vec<Vec<ItemId>> = Vec::with_capacity(raw_transactions.len());
    for (t, (l, r)) in raw_transactions.iter().enumerate() {
        let mut items = Vec::with_capacity(l.len() + r.len());
        // Resolve each name once, enforcing its side as it resolves: left
        // names must be left-view items and vice versa.
        for (names, expected, word) in [(l, Side::Left, "left"), (r, Side::Right, "right")] {
            for n in names {
                let id = vocab.id_of(n).ok_or_else(|| {
                    DataError::Format(format!("transaction {t}: unknown item {n:?}"))
                })?;
                if vocab.side_of(id) != expected {
                    return Err(DataError::Format(format!(
                        "transaction {t}: item {n:?} is not a {word}-view item"
                    )));
                }
                items.push(id);
            }
        }
        transactions.push(items);
    }

    Ok(TwoViewDataset::from_transactions(vocab, &transactions).with_name(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::ItemSet;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[vec![0, 1, 3], vec![0, 4], vec![1, 2, 3, 4], vec![]],
        )
        .with_name("toy")
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = toy();
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let d2 = read_dataset(&buf[..]).unwrap();
        assert_eq!(d2.name(), "toy");
        assert_eq!(d2.n_transactions(), d.n_transactions());
        assert_eq!(d2.vocab().n_left(), 3);
        assert_eq!(d2.vocab().n_right(), 2);
        for t in 0..d.n_transactions() {
            assert_eq!(d.transaction_items(t), d2.transaction_items(t));
        }
        assert_eq!(
            d2.support_count(&ItemSet::from_items([1, 3])),
            d.support_count(&ItemSet::from_items([1, 3]))
        );
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            read_dataset("#nope\n".as_bytes()),
            Err(DataError::Format(_))
        ));
    }

    #[test]
    fn rejects_missing_separator() {
        let src = "#2v1\nL a\nR x\nT a x\n";
        assert!(read_dataset(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unknown_item() {
        let src = "#2v1\nL a\nR x\nT b | x\n";
        assert!(read_dataset(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_item_on_wrong_side() {
        let src = "#2v1\nL a\nR x\nT x | a\n";
        assert!(read_dataset(src.as_bytes()).is_err());
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let src = "#2v1\n# hello\n\nL a b\nR x\nT a | x\nT b |\n";
        let d = read_dataset(src.as_bytes()).unwrap();
        assert_eq!(d.n_transactions(), 2);
        assert_eq!(d.support(0), 1);
    }
}
