//! The paper's preprocessing pipeline (§6, "Data pre-processing"):
//! numerical attributes are discretised into **five equal-height bins**,
//! categorical attribute–values become one item each, and the result is a
//! Boolean item matrix ready to be split into two views.
//!
//! This module reproduces that pipeline so users can bring their own
//! attribute-value data: build an [`AttributeTable`], call
//! [`AttributeTable::binarize`], then split with [`crate::split`].

use crate::error::DataError;

/// A column of raw attribute data.
#[derive(Clone, Debug)]
pub enum Column {
    /// Numeric attribute; `None` encodes a missing value (no item emitted).
    Numeric(Vec<Option<f64>>),
    /// Categorical attribute; `None` encodes a missing value. The paper's
    /// House data treats "?" as its own category — encode that as
    /// `Some("?")` if desired.
    Categorical(Vec<Option<String>>),
}

impl Column {
    fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical(v) => v.len(),
        }
    }
}

/// A named table of raw attribute columns over the same objects.
#[derive(Clone, Debug, Default)]
pub struct AttributeTable {
    names: Vec<String>,
    columns: Vec<Column>,
}

/// The result of binarisation: item names plus, per object, the list of
/// item indices that are set.
#[derive(Clone, Debug)]
pub struct Binarized {
    /// One name per produced Boolean item, e.g. `age:bin3`, `party=rep`.
    pub item_names: Vec<String>,
    /// Per object, ascending item indices.
    pub rows: Vec<Vec<usize>>,
}

/// Number of equal-height bins the paper uses.
pub const PAPER_BINS: usize = 5;

impl AttributeTable {
    /// An empty table.
    pub fn new() -> Self {
        AttributeTable::default()
    }

    /// Adds a column.
    ///
    /// # Errors
    /// All columns must have the same number of objects.
    pub fn add_column(&mut self, name: impl Into<String>, column: Column) -> Result<(), DataError> {
        if let Some(first) = self.columns.first() {
            if first.len() != column.len() {
                return Err(DataError::Config(format!(
                    "column length {} != table length {}",
                    column.len(),
                    first.len()
                )));
            }
        }
        self.names.push(name.into());
        self.columns.push(column);
        Ok(())
    }

    /// Number of objects (rows).
    pub fn n_objects(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of attribute columns.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// Binarises every column: numeric ones with `bins` equal-height bins,
    /// categorical ones with one item per observed value.
    pub fn binarize(&self, bins: usize) -> Result<Binarized, DataError> {
        if bins < 2 {
            return Err(DataError::Config("need at least 2 bins".into()));
        }
        let n = self.n_objects();
        let mut item_names: Vec<String> = Vec::new();
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n];

        for (name, col) in self.names.iter().zip(&self.columns) {
            match col {
                Column::Numeric(values) => {
                    let edges = equal_height_edges(values, bins);
                    let base = item_names.len();
                    for b in 0..edges.len() + 1 {
                        item_names.push(format!("{name}:bin{}", b + 1));
                    }
                    for (obj, v) in values.iter().enumerate() {
                        if let Some(x) = v {
                            let b = edges.partition_point(|e| x > e);
                            rows[obj].push(base + b);
                        }
                    }
                }
                Column::Categorical(values) => {
                    // Deterministic item order: first occurrence.
                    let mut seen: Vec<&str> = Vec::new();
                    for v in values.iter().flatten() {
                        if !seen.contains(&v.as_str()) {
                            seen.push(v);
                        }
                    }
                    let base = item_names.len();
                    for v in &seen {
                        item_names.push(format!("{name}={v}"));
                    }
                    for (obj, v) in values.iter().enumerate() {
                        if let Some(val) = v {
                            // lint: allow(panic_hygiene) — every Some value was pushed into `seen` just above
                            let idx = seen.iter().position(|s| s == val).expect("seen");
                            rows[obj].push(base + idx);
                        }
                    }
                }
            }
        }
        Ok(Binarized { item_names, rows })
    }
}

/// Equal-height (equal-frequency) bin edges: values `> edge[i-1]` and
/// `<= edge[i]` fall in bin `i`. Returns at most `bins - 1` edges;
/// duplicate quantiles collapse (fewer effective bins on ties).
fn equal_height_edges(values: &[Option<f64>], bins: usize) -> Vec<f64> {
    let mut sorted: Vec<f64> = values.iter().flatten().copied().collect();
    sorted.sort_by(f64::total_cmp);
    if sorted.is_empty() {
        return Vec::new();
    }
    let max = sorted[sorted.len() - 1];
    let mut edges = Vec::new();
    for k in 1..bins {
        let idx = (k * sorted.len()) / bins;
        if idx == 0 || idx >= sorted.len() {
            continue;
        }
        let edge = sorted[idx - 1];
        if edges.last() != Some(&edge) && edge < max {
            edges.push(edge);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_equal_height_bins_balance_counts() {
        let values: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let mut t = AttributeTable::new();
        t.add_column("x", Column::Numeric(values)).unwrap();
        let b = t.binarize(PAPER_BINS).unwrap();
        assert_eq!(b.item_names.len(), 5);
        // Count objects per bin: must be 20 each.
        let mut counts = [0usize; 5];
        for row in &b.rows {
            assert_eq!(row.len(), 1);
            counts[row[0]] += 1;
        }
        assert_eq!(counts, [20, 20, 20, 20, 20]);
    }

    #[test]
    fn categorical_one_item_per_value() {
        let mut t = AttributeTable::new();
        t.add_column(
            "party",
            Column::Categorical(vec![
                Some("dem".into()),
                Some("rep".into()),
                Some("dem".into()),
                None,
            ]),
        )
        .unwrap();
        let b = t.binarize(5).unwrap();
        assert_eq!(b.item_names, vec!["party=dem", "party=rep"]);
        assert_eq!(b.rows[0], vec![0]);
        assert_eq!(b.rows[1], vec![1]);
        assert_eq!(b.rows[2], vec![0]);
        assert!(b.rows[3].is_empty(), "missing value emits no item");
    }

    #[test]
    fn mixed_columns_concatenate_items() {
        let mut t = AttributeTable::new();
        t.add_column(
            "n",
            Column::Numeric(vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)]),
        )
        .unwrap();
        t.add_column(
            "c",
            Column::Categorical(vec![
                Some("a".into()),
                Some("b".into()),
                Some("a".into()),
                Some("b".into()),
            ]),
        )
        .unwrap();
        let b = t.binarize(2).unwrap();
        // Numeric gives 2 bins, categorical gives 2 values.
        assert_eq!(b.item_names.len(), 4);
        for row in &b.rows {
            assert_eq!(row.len(), 2, "one item per column");
        }
    }

    #[test]
    fn ties_collapse_bins() {
        // All-equal values cannot be split into bins.
        let mut t = AttributeTable::new();
        t.add_column("x", Column::Numeric(vec![Some(7.0); 10]))
            .unwrap();
        let b = t.binarize(5).unwrap();
        assert_eq!(b.item_names.len(), 1, "single degenerate bin");
        assert!(b.rows.iter().all(|r| r == &vec![0]));
    }

    #[test]
    fn missing_numeric_values_skipped() {
        let mut t = AttributeTable::new();
        t.add_column(
            "x",
            Column::Numeric(vec![Some(1.0), None, Some(3.0), Some(4.0)]),
        )
        .unwrap();
        let b = t.binarize(2).unwrap();
        assert!(b.rows[1].is_empty());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut t = AttributeTable::new();
        t.add_column("a", Column::Numeric(vec![Some(1.0)])).unwrap();
        let err = t.add_column("b", Column::Numeric(vec![Some(1.0), Some(2.0)]));
        assert!(err.is_err());
    }

    #[test]
    fn too_few_bins_rejected() {
        let t = AttributeTable::new();
        assert!(t.binarize(1).is_err());
    }
}
