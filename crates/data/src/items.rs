//! Items, views (sides), vocabularies, and itemsets.
//!
//! A two-view dataset is defined over two disjoint item vocabularies `I_L`
//! and `I_R`. We give every item a single *global* id: left items occupy
//! `0..n_left`, right items occupy `n_left..n_left + n_right`. Global ids
//! keep mining over the joint alphabet trivial, while [`Vocabulary`] recovers
//! the side and per-side (local) index whenever the distinction matters.

use std::collections::BTreeMap;
use std::fmt;

/// One of the two views of a two-view dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The left-hand view (`D_L`, items `I_L`).
    Left,
    /// The right-hand view (`D_R`, items `I_R`).
    Right,
}

impl Side {
    /// The other view.
    #[inline]
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Both sides, left first.
    pub const BOTH: [Side; 2] = [Side::Left, Side::Right];
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "L"),
            Side::Right => write!(f, "R"),
        }
    }
}

/// Global identifier of an item (left items first, then right items).
pub type ItemId = u32;

/// The named item universe of a two-view dataset.
///
/// Item names are only used for presentation (example rules, figures); all
/// algorithms operate on ids.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    names: Vec<String>,
    by_name: BTreeMap<String, ItemId>,
    n_left: usize,
}

impl Vocabulary {
    /// Builds a vocabulary from named left and right items.
    ///
    /// # Panics
    /// Panics if any name occurs twice (across both sides).
    pub fn new<L, R>(left: L, right: R) -> Self
    where
        L: IntoIterator,
        L::Item: Into<String>,
        R: IntoIterator,
        R::Item: Into<String>,
    {
        let mut names: Vec<String> = left.into_iter().map(Into::into).collect();
        let n_left = names.len();
        names.extend(right.into_iter().map(Into::into));
        let mut by_name = BTreeMap::new();
        for (i, n) in names.iter().enumerate() {
            let prev = by_name.insert(n.clone(), i as ItemId);
            assert!(prev.is_none(), "duplicate item name: {n}");
        }
        Vocabulary {
            names,
            by_name,
            n_left,
        }
    }

    /// A vocabulary with synthetic names `L0..L{nl}` / `R0..R{nr}`.
    pub fn unnamed(n_left: usize, n_right: usize) -> Self {
        Vocabulary::new(
            (0..n_left).map(|i| format!("L{i}")),
            (0..n_right).map(|i| format!("R{i}")),
        )
    }

    /// Number of left-hand items `|I_L|`.
    #[inline]
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right-hand items `|I_R|`.
    #[inline]
    pub fn n_right(&self) -> usize {
        self.names.len() - self.n_left
    }

    /// Total number of items `|I_L| + |I_R|`.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.names.len()
    }

    /// Number of items on `side`.
    #[inline]
    pub fn n_on(&self, side: Side) -> usize {
        match side {
            Side::Left => self.n_left(),
            Side::Right => self.n_right(),
        }
    }

    /// The side an item belongs to.
    #[inline]
    pub fn side_of(&self, item: ItemId) -> Side {
        debug_assert!((item as usize) < self.n_items());
        if (item as usize) < self.n_left {
            Side::Left
        } else {
            Side::Right
        }
    }

    /// The index of `item` within its own side (`0..n_on(side)`).
    #[inline]
    pub fn local_index(&self, item: ItemId) -> usize {
        match self.side_of(item) {
            Side::Left => item as usize,
            Side::Right => item as usize - self.n_left,
        }
    }

    /// The global id of the `local`-th item on `side`.
    #[inline]
    pub fn global_id(&self, side: Side, local: usize) -> ItemId {
        debug_assert!(local < self.n_on(side));
        match side {
            Side::Left => local as ItemId,
            Side::Right => (self.n_left + local) as ItemId,
        }
    }

    /// Iterates over the global ids of all items on `side`.
    pub fn items_on(&self, side: Side) -> std::ops::Range<ItemId> {
        match side {
            Side::Left => 0..self.n_left as ItemId,
            Side::Right => self.n_left as ItemId..self.n_items() as ItemId,
        }
    }

    /// The display name of an item.
    #[inline]
    pub fn name(&self, item: ItemId) -> &str {
        &self.names[item as usize]
    }

    /// Looks an item up by name.
    pub fn id_of(&self, name: &str) -> Option<ItemId> {
        self.by_name.get(name).copied()
    }
}

/// A sorted, duplicate-free set of global item ids.
///
/// Itemsets in rules and candidates are small (a handful of items), so a
/// sorted `Vec` beats a bitmap or hash set both in memory and in iteration
/// speed.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ItemSet(Vec<ItemId>);

impl ItemSet {
    /// The empty itemset.
    pub fn empty() -> Self {
        ItemSet(Vec::new())
    }

    /// Builds an itemset from arbitrary ids (sorted and deduplicated).
    pub fn from_items<I: IntoIterator<Item = ItemId>>(items: I) -> Self {
        let mut v: Vec<ItemId> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        ItemSet(v)
    }

    /// Builds an itemset from a vector already sorted and duplicate-free.
    ///
    /// # Panics
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted(items: Vec<ItemId>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
        ItemSet(items)
    }

    /// A singleton itemset.
    pub fn singleton(item: ItemId) -> Self {
        ItemSet(vec![item])
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// Iterates the items in ascending id order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, ItemId>> {
        self.0.iter().copied()
    }

    /// The items as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[ItemId] {
        &self.0
    }

    /// Returns a new itemset with `item` added.
    pub fn with(&self, item: ItemId) -> Self {
        match self.0.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = self.0.clone();
                v.insert(pos, item);
                ItemSet(v)
            }
        }
    }

    /// Set union.
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        let mut v = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    v.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    v.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    v.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        v.extend_from_slice(&self.0[i..]);
        v.extend_from_slice(&other.0[j..]);
        ItemSet(v)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &ItemSet) -> ItemSet {
        let mut v = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    v.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        ItemSet(v)
    }

    /// `true` iff the two itemsets share no item.
    pub fn is_disjoint(&self, other: &ItemSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// `true` iff `self ⊆ other`.
    pub fn is_subset(&self, other: &ItemSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() {
            if j >= other.0.len() {
                return false;
            }
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// Splits the itemset into its left-view and right-view parts.
    pub fn split(&self, vocab: &Vocabulary) -> (ItemSet, ItemSet) {
        let boundary = vocab.n_left() as ItemId;
        let cut = self.0.partition_point(|&i| i < boundary);
        (
            ItemSet(self.0[..cut].to_vec()),
            ItemSet(self.0[cut..].to_vec()),
        )
    }

    /// `true` iff the itemset contains at least one item of each view.
    pub fn spans_both_views(&self, vocab: &Vocabulary) -> bool {
        match (self.0.first(), self.0.last()) {
            (Some(&lo), Some(&hi)) => {
                vocab.side_of(lo) == Side::Left && vocab.side_of(hi) == Side::Right
            }
            _ => false,
        }
    }

    /// Renders the itemset with item names, e.g. `{a, b, c}`.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> ItemSetDisplay<'a> {
        ItemSetDisplay { set: self, vocab }
    }
}

impl fmt::Debug for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.0.iter()).finish()
    }
}

impl FromIterator<ItemId> for ItemSet {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        ItemSet::from_items(iter)
    }
}

/// Helper returned by [`ItemSet::display`].
pub struct ItemSetDisplay<'a> {
    set: &'a ItemSet,
    vocab: &'a Vocabulary,
}

impl fmt::Display for ItemSetDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, item) in self.set.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.vocab.name(item))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        Vocabulary::new(["a", "b", "c"], ["x", "y"])
    }

    #[test]
    fn vocabulary_layout() {
        let v = vocab();
        assert_eq!(v.n_left(), 3);
        assert_eq!(v.n_right(), 2);
        assert_eq!(v.n_items(), 5);
        assert_eq!(v.side_of(0), Side::Left);
        assert_eq!(v.side_of(2), Side::Left);
        assert_eq!(v.side_of(3), Side::Right);
        assert_eq!(v.local_index(4), 1);
        assert_eq!(v.global_id(Side::Right, 1), 4);
        assert_eq!(v.global_id(Side::Left, 2), 2);
        assert_eq!(v.items_on(Side::Left).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(v.items_on(Side::Right).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(v.name(3), "x");
        assert_eq!(v.id_of("y"), Some(4));
        assert_eq!(v.id_of("z"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate item name")]
    fn duplicate_names_rejected() {
        Vocabulary::new(["a"], ["a"]);
    }

    #[test]
    fn side_opposite() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
    }

    #[test]
    fn itemset_construction_sorts_and_dedups() {
        let s = ItemSet::from_items([4, 1, 4, 2]);
        assert_eq!(s.as_slice(), &[1, 2, 4]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(2));
        assert!(!s.contains(3));
    }

    #[test]
    fn itemset_ops() {
        let a = ItemSet::from_items([1, 3, 5]);
        let b = ItemSet::from_items([3, 4, 5, 6]);
        assert_eq!(a.union(&b).as_slice(), &[1, 3, 4, 5, 6]);
        assert_eq!(a.intersect(&b).as_slice(), &[3, 5]);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&ItemSet::from_items([0, 2])));
        assert!(ItemSet::from_items([3, 5]).is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(ItemSet::empty().is_subset(&a));
        assert_eq!(a.with(4).as_slice(), &[1, 3, 4, 5]);
        assert_eq!(a.with(3).as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn itemset_split_by_view() {
        let v = vocab();
        let s = ItemSet::from_items([0, 2, 3]);
        let (l, r) = s.split(&v);
        assert_eq!(l.as_slice(), &[0, 2]);
        assert_eq!(r.as_slice(), &[3]);
        assert!(s.spans_both_views(&v));
        assert!(!ItemSet::from_items([0, 1]).spans_both_views(&v));
        assert!(!ItemSet::from_items([3, 4]).spans_both_views(&v));
        assert!(!ItemSet::empty().spans_both_views(&v));
    }

    #[test]
    fn itemset_display_uses_names() {
        let v = vocab();
        let s = ItemSet::from_items([0, 4]);
        assert_eq!(format!("{}", s.display(&v)), "{a, y}");
    }
}
