//! Adaptive sparse/dense tidsets.
//!
//! Every tidset in the workspace — per-item columns of the dataset, mining
//! intersections, the cover state's covered/error columns, the SELECT/EXACT
//! seed caches — used to be a fixed-width dense [`Bitmap`] over
//! `n_transactions` bits, so on large-sparse corpora (support ≪ n) every
//! fused popcount kernel scanned all words regardless of how few bits were
//! set. [`Tidset`] is a roaring-style two-variant representation:
//!
//! * **`Dense`** — the word-parallel [`Bitmap`], unbeatable once a set
//!   covers a meaningful fraction of the universe;
//! * **`Sparse`** — a sorted `Vec<u32>` of tids, word-*proportional* in the
//!   cardinality instead of the universe, with sparse×sparse set ops as
//!   galloping merge-intersections.
//!
//! The representation flips adaptively around the kernel-cost breakeven
//! threshold ([`sparse_limit`]: a quarter of the dense word count — see
//! its docs for why the looser memory breakeven is the wrong flip point),
//! and every kernel accepts **any combination** of operand
//! representations. Representation is an invisible
//! performance detail: all operations — including the floating-point
//! [`Tidset::weighted_len`] / [`Tidset::difference_weight`] accumulations
//! and [`Tidset::fingerprint`] — produce **bit-identical results** for the
//! same set regardless of representation (pinned by unit + property tests),
//! so models fitted under forced-sparse, forced-dense and adaptive modes
//! are exactly equal.
//!
//! [`TidsetMode`] selects the policy process-wide (`TWOVIEW_TIDSET_MODE`
//! env: `adaptive` | `dense` | `sparse`); the forced modes exist for
//! differential testing and for the `perfsuite` dense-baseline timings.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::bitmap::{BitIter, Bitmap};

/// Number of bits per dense storage word.
const WORD_BITS: usize = 64;

/// Representation policy for newly built / rebalanced tidsets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TidsetMode {
    /// Pick per set: sparse below [`sparse_limit`], dense above (default).
    Adaptive = 0,
    /// Always dense — the pre-adaptive behaviour, kept as the perfsuite
    /// baseline and for differential testing.
    ForceDense = 1,
    /// Always sparse — exercises the sparse kernels on any data.
    ForceSparse = 2,
}

fn mode_cell() -> &'static AtomicU8 {
    static CELL: OnceLock<AtomicU8> = OnceLock::new();
    CELL.get_or_init(|| {
        let initial = match std::env::var("TWOVIEW_TIDSET_MODE").as_deref() {
            Ok("dense") => TidsetMode::ForceDense,
            Ok("sparse") => TidsetMode::ForceSparse,
            Ok("adaptive") | Err(_) => TidsetMode::Adaptive,
            Ok(other) => {
                // A typo'd forced mode silently measuring adaptive would
                // invalidate a differential run; make the fallback loud.
                eprintln!(
                    "twoview-data: unrecognized TWOVIEW_TIDSET_MODE={other:?} \
                     (expected adaptive|dense|sparse); using adaptive"
                );
                TidsetMode::Adaptive
            }
        };
        AtomicU8::new(initial as u8)
    })
}

/// The process-wide representation policy (see [`set_tidset_mode`]).
pub fn tidset_mode() -> TidsetMode {
    match mode_cell().load(Ordering::Relaxed) {
        1 => TidsetMode::ForceDense,
        2 => TidsetMode::ForceSparse,
        _ => TidsetMode::Adaptive,
    }
}

/// Sets the process-wide representation policy.
///
/// Results are representation-independent, so flipping the mode between
/// runs never changes any model — only memory use and speed. Intended for
/// benchmarks and differential tests; the default ([`TidsetMode::Adaptive`],
/// overridable via `TWOVIEW_TIDSET_MODE`) is right for production.
pub fn set_tidset_mode(mode: TidsetMode) {
    mode_cell().store(mode as u8, Ordering::Relaxed);
}

/// Largest cardinality at which the sparse representation is preferred in
/// adaptive mode: a quarter of the dense word count (clamped to at least
/// 4 so empty/near-empty sets over tiny universes still store sparse).
///
/// This is the **time** breakeven, not the memory one. A sparse operand
/// costs ≈2–3 cycles per tid (probe loops, merges), while the fused dense
/// kernels stream ≈0.5–1 cycle per word across all operands — so sparse
/// only wins once `card ≲ words/4`. The memory breakeven (`2·words`,
/// where `4·card` bytes undercut `8·words`) is far looser; choosing it
/// made whole item columns sparse and *slowed* mining ~10× on sparse
/// corpora, because prefix-tidset × column intersections turned from O(1)
/// dense probes into galloping binary searches. Below `words/4` the
/// common sparse sets (deep DFS intersections, pair seed tidsets) win on
/// both axes at once.
#[inline]
pub fn sparse_limit(universe: usize) -> usize {
    (universe.div_ceil(WORD_BITS) / 4).max(4)
}

/// Heap bytes of a dense tidset over `universe` — what the old all-dense
/// layout paid per set regardless of cardinality. Used by the cache-budget
/// accounting and the perfsuite bytes-saved statistic.
#[inline]
pub fn dense_bytes(universe: usize) -> usize {
    universe.div_ceil(WORD_BITS) * 8
}

#[derive(Clone)]
enum Repr {
    /// Sorted, deduplicated tids.
    Sparse(Vec<u32>),
    Dense(Bitmap),
}

/// A set of transaction ids over the fixed universe `0..universe`, stored
/// sparse or dense (see the module docs).
#[derive(Clone)]
pub struct Tidset {
    universe: usize,
    repr: Repr,
}

// ------------------------------------------------------------------ sparse
// slice helpers (sorted unique u32 lists)

/// Number of elements of `a` strictly below `x`, found by exponential
/// search + binary refinement — the "gallop" step of the skewed merges.
#[inline]
fn gallop_to(a: &[u32], x: u32) -> usize {
    if a.first().is_none_or(|&f| f >= x) {
        return 0;
    }
    let mut hi = 1usize;
    while hi < a.len() && a[hi] < x {
        hi <<= 1;
    }
    let lo = hi >> 1;
    let end = hi.min(a.len());
    lo + a[lo..end].partition_point(|&v| v < x)
}

/// When the smaller operand is at least this factor shorter, gallop per
/// element instead of linear-merging.
const GALLOP_FACTOR: usize = 8;

/// Walks `a ∩ b` in ascending order, calling `emit` per common element:
/// a galloping scan of the larger list when the sizes are skewed, a
/// linear two-pointer merge otherwise. The single implementation behind
/// both the materialising and the counting intersection, so the gallop
/// heuristics cannot drift apart.
#[inline]
fn sparse_intersect_visit(a: &[u32], b: &[u32], mut emit: impl FnMut(u32)) {
    let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if s.len().saturating_mul(GALLOP_FACTOR) < l.len() {
        let mut off = 0usize;
        for &x in s {
            off += gallop_to(&l[off..], x);
            if off >= l.len() {
                break;
            }
            if l[off] == x {
                emit(x);
                off += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < s.len() && j < l.len() {
            match s[i].cmp(&l[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    emit(s[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

fn sparse_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    sparse_intersect_visit(a, b, |x| out.push(x));
    out
}

fn sparse_intersect_count(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0usize;
    sparse_intersect_visit(a, b, |_| count += 1);
    count
}

fn sparse_union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[inline]
fn sparse_contains(a: &[u32], x: u32) -> bool {
    a.binary_search(&x).is_ok()
}

impl Tidset {
    /// Whether a set of `card` elements over `universe` should be sparse
    /// under the current [`tidset_mode`].
    #[inline]
    fn choose_sparse(card: usize, universe: usize) -> bool {
        match tidset_mode() {
            TidsetMode::Adaptive => card <= sparse_limit(universe),
            TidsetMode::ForceDense => false,
            TidsetMode::ForceSparse => true,
        }
    }

    /// The empty tidset over `0..universe`.
    pub fn new(universe: usize) -> Tidset {
        let repr = if Self::choose_sparse(0, universe) {
            Repr::Sparse(Vec::new())
        } else {
            Repr::Dense(Bitmap::new(universe))
        };
        Tidset { universe, repr }
    }

    /// The full tidset `0..universe`.
    pub fn full(universe: usize) -> Tidset {
        let repr = if Self::choose_sparse(universe, universe) {
            Repr::Sparse((0..universe as u32).collect())
        } else {
            Repr::Dense(Bitmap::full(universe))
        };
        Tidset { universe, repr }
    }

    /// Builds a tidset from a **sorted, deduplicated** tid list.
    ///
    /// # Panics
    /// Debug-panics when the list is unsorted, has duplicates, or contains
    /// a tid `>= universe`.
    pub fn from_sorted(universe: usize, tids: Vec<u32>) -> Tidset {
        debug_assert!(tids.windows(2).all(|w| w[0] < w[1]), "unsorted tid list");
        debug_assert!(tids.last().is_none_or(|&t| (t as usize) < universe));
        let mut out = Tidset {
            universe,
            repr: Repr::Sparse(tids),
        };
        out.renormalize();
        out
    }

    /// Builds a tidset from arbitrary (unsorted, possibly repeated) indices.
    ///
    /// # Panics
    /// Panics if any index is `>= universe`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(universe: usize, indices: I) -> Tidset {
        Tidset::from_bitmap(Bitmap::from_indices(universe, indices))
    }

    /// Converts a dense bitmap, choosing the representation adaptively.
    pub fn from_bitmap(bitmap: Bitmap) -> Tidset {
        let universe = bitmap.capacity();
        let mut out = Tidset {
            universe,
            repr: Repr::Dense(bitmap),
        };
        out.renormalize();
        out
    }

    /// Re-chooses the representation for the current cardinality and mode —
    /// the promotion/demotion step every constructor and mutating op ends
    /// with.
    fn renormalize(&mut self) {
        let want_sparse = Self::choose_sparse(self.len(), self.universe);
        match (&self.repr, want_sparse) {
            (Repr::Sparse(_), true) | (Repr::Dense(_), false) => {}
            (Repr::Sparse(tids), false) => {
                self.repr = Repr::Dense(Bitmap::from_indices(
                    self.universe,
                    tids.iter().map(|&t| t as usize),
                ));
            }
            (Repr::Dense(bm), true) => {
                self.repr = Repr::Sparse(bm.iter().map(|t| t as u32).collect());
            }
        }
    }

    /// The size of the universe this tidset ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// `true` if currently stored sparse (a performance detail — never
    /// observable through set values).
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Heap bytes of the current representation (`4·card` sparse,
    /// `8·⌈universe/64⌉` dense). The cache budgets count these actual
    /// bytes, so sparse tidsets buy proportionally more cache hits.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Sparse(tids) => tids.len() * 4,
            Repr::Dense(_) => dense_bytes(self.universe),
        }
    }

    /// A copy forced into the sparse representation (testing/benching aid).
    pub fn to_sparse(&self) -> Tidset {
        Tidset {
            universe: self.universe,
            repr: Repr::Sparse(self.iter().map(|t| t as u32).collect()),
        }
    }

    /// A copy forced into the dense representation (testing/benching aid).
    pub fn to_dense(&self) -> Tidset {
        Tidset {
            universe: self.universe,
            repr: Repr::Dense(Bitmap::from_indices(self.universe, self.iter())),
        }
    }

    /// Number of tids in the set.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(tids) => tids.len(),
            Repr::Dense(bm) => bm.len(),
        }
    }

    /// `true` if no tid is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Sparse(tids) => tids.is_empty(),
            Repr::Dense(bm) => bm.is_empty(),
        }
    }

    /// Tests membership of `t`.
    #[inline]
    pub fn contains(&self, t: usize) -> bool {
        match &self.repr {
            Repr::Sparse(tids) => sparse_contains(tids, t as u32),
            Repr::Dense(bm) => bm.contains(t),
        }
    }

    /// Iterates the tids in increasing order.
    pub fn iter(&self) -> TidIter<'_> {
        match &self.repr {
            Repr::Sparse(tids) => TidIter::Sparse(tids.iter()),
            Repr::Dense(bm) => TidIter::Dense(bm.iter()),
        }
    }

    /// Collects the tids into a vector (ascending order).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The smallest tid, if any.
    pub fn first(&self) -> Option<usize> {
        match &self.repr {
            Repr::Sparse(tids) => tids.first().map(|&t| t as usize),
            Repr::Dense(bm) => bm.first(),
        }
    }

    // ------------------------------------------------------------ kernels

    /// Allocating intersection, result representation chosen adaptively —
    /// the miners' child-tidset constructor.
    pub fn and(&self, other: &Tidset) -> Tidset {
        debug_assert_eq!(self.universe, other.universe);
        let repr = match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => Repr::Sparse(sparse_intersect(a, b)),
            (Repr::Sparse(a), Repr::Dense(b)) => Repr::Sparse(
                a.iter()
                    .copied()
                    .filter(|&t| b.contains(t as usize))
                    .collect(),
            ),
            (Repr::Dense(a), Repr::Sparse(b)) => Repr::Sparse(
                b.iter()
                    .copied()
                    .filter(|&t| a.contains(t as usize))
                    .collect(),
            ),
            (Repr::Dense(a), Repr::Dense(b)) => Repr::Dense(a.and(b)),
        };
        let mut out = Tidset {
            universe: self.universe,
            repr,
        };
        out.renormalize();
        out
    }

    /// `self ∩ other` when the result's cardinality is already known — the
    /// miners' support-check-then-materialise pattern. A known-sparse
    /// result of two dense operands is collected straight off the masked
    /// word scan, skipping the dense intermediate (and its allocation +
    /// recount) that [`Tidset::and`] would build first.
    pub fn and_with_card(&self, other: &Tidset, card: usize) -> Tidset {
        debug_assert_eq!(self.universe, other.universe);
        if let (Repr::Dense(a), Repr::Dense(b)) = (&self.repr, &other.repr) {
            if Self::choose_sparse(card, self.universe) {
                let mut tids = Vec::with_capacity(card);
                tids.extend(a.iter_and(b).map(|t| t as u32));
                debug_assert_eq!(tids.len(), card);
                return Tidset {
                    universe: self.universe,
                    repr: Repr::Sparse(tids),
                };
            }
        }
        self.and(other)
    }

    /// Writes `self ∩ other` into `out` (same result as [`Tidset::and`]):
    /// when all three are dense the word kernel writes into `out`'s
    /// existing buffer, and `out` then re-chooses its representation for
    /// the new cardinality like every other op.
    pub fn and_into(&self, other: &Tidset, out: &mut Tidset) {
        debug_assert_eq!(self.universe, out.universe);
        if let (Repr::Dense(a), Repr::Dense(b), Repr::Dense(o)) =
            (&self.repr, &other.repr, &mut out.repr)
        {
            a.and_into(b, o);
            out.renormalize();
            return;
        }
        *out = self.and(other);
    }

    /// In-place intersection: `self &= other`. Dense×dense runs the
    /// zero-allocation word kernel in place (then re-chooses the
    /// representation); other combinations rebuild through
    /// [`Tidset::and`].
    pub fn intersect_with(&mut self, other: &Tidset) {
        if let (Repr::Dense(a), Repr::Dense(b)) = (&mut self.repr, &other.repr) {
            a.intersect_with(b);
            self.renormalize();
            return;
        }
        let repr = std::mem::replace(&mut self.repr, Repr::Sparse(Vec::new()));
        let lhs = Tidset {
            universe: self.universe,
            repr,
        };
        *self = lhs.and(other);
    }

    /// `|self ∩ other|` without allocating; sparse×sparse runs the galloping
    /// merge, mixed pairs probe the dense side per sparse tid.
    #[inline]
    pub fn intersection_len(&self, other: &Tidset) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => sparse_intersect_count(a, b),
            (Repr::Sparse(a), Repr::Dense(b)) | (Repr::Dense(b), Repr::Sparse(a)) => {
                a.iter().filter(|&&t| b.contains(t as usize)).count()
            }
            (Repr::Dense(a), Repr::Dense(b)) => a.intersection_len(b),
        }
    }

    /// `|self ∪ other|` without allocating.
    #[inline]
    pub fn union_len(&self, other: &Tidset) -> usize {
        self.len() + other.len() - self.intersection_len(other)
    }

    /// In-place union: `self |= other`, promoting the representation when
    /// the result outgrows the sparse threshold.
    pub fn union_with(&mut self, other: &Tidset) {
        debug_assert_eq!(self.universe, other.universe);
        match (&mut self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a.union_with(b),
            (Repr::Dense(a), Repr::Sparse(b)) => {
                for &t in b {
                    a.insert(t as usize);
                }
            }
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                *a = sparse_union(a, b);
                self.renormalize();
            }
            (Repr::Sparse(a), Repr::Dense(b)) => {
                // The union is at least as large as the dense operand, so
                // build on a clone of its bitmap and scatter the sparse
                // tids in — one O(words) copy plus O(card) inserts instead
                // of collect + merge + rebuild.
                let mut dense = b.clone();
                for &t in a.iter() {
                    dense.insert(t as usize);
                }
                self.repr = Repr::Dense(dense);
                self.renormalize();
            }
        }
    }

    /// Allocating difference `self \ other`, representation re-chosen for
    /// the result.
    pub fn difference(&self, other: &Tidset) -> Tidset {
        debug_assert_eq!(self.universe, other.universe);
        let repr = match (&self.repr, &other.repr) {
            (Repr::Sparse(a), _) => Repr::Sparse(
                a.iter()
                    .copied()
                    .filter(|&t| !other.contains(t as usize))
                    .collect(),
            ),
            (Repr::Dense(a), Repr::Dense(b)) => Repr::Dense(a.and_not(b)),
            (Repr::Dense(a), Repr::Sparse(b)) => {
                let mut out = a.clone();
                for &t in b {
                    out.remove(t as usize);
                }
                Repr::Dense(out)
            }
        };
        let mut out = Tidset {
            universe: self.universe,
            repr,
        };
        out.renormalize();
        out
    }

    /// In-place difference: `self &= !other`.
    pub fn subtract(&mut self, other: &Tidset) {
        let repr = std::mem::replace(&mut self.repr, Repr::Sparse(Vec::new()));
        let lhs = Tidset {
            universe: self.universe,
            repr,
        };
        *self = lhs.difference(other);
    }

    /// `|self \ other|` without allocating.
    #[inline]
    pub fn difference_len(&self, other: &Tidset) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), _) => a.iter().filter(|&&t| !other.contains(t as usize)).count(),
            (Repr::Dense(a), Repr::Dense(b)) => a.difference_len(b),
            (Repr::Dense(_), Repr::Sparse(_)) => self.len() - self.intersection_len(other),
        }
    }

    /// `|self ∩ b ∩ ¬c|` in one fused pass — the *hit* kernel of the
    /// columnar cover state, for every representation combination.
    #[inline]
    pub fn and_and_not_len(&self, b: &Tidset, c: &Tidset) -> usize {
        debug_assert_eq!(self.universe, b.universe);
        debug_assert_eq!(self.universe, c.universe);
        match (&self.repr, &b.repr, &c.repr) {
            (Repr::Dense(x), Repr::Dense(y), Repr::Dense(z)) => x.and_and_not_len(y, z),
            (Repr::Sparse(a), _, _) => a
                .iter()
                .filter(|&&t| b.contains(t as usize) && !c.contains(t as usize))
                .count(),
            (_, Repr::Sparse(bs), _) => bs
                .iter()
                .filter(|&&t| self.contains(t as usize) && !c.contains(t as usize))
                .count(),
            (Repr::Dense(x), Repr::Dense(y), Repr::Sparse(cs)) => {
                // |a∩b| − |a∩b∩c|, the sparse side iterated.
                x.intersection_len(y)
                    - cs.iter()
                        .filter(|&&t| x.contains(t as usize) && y.contains(t as usize))
                        .count()
            }
        }
    }

    /// `|self ∩ ¬b ∩ ¬c|` in one fused pass — the *miss* kernel of the
    /// columnar cover state, for every representation combination.
    #[inline]
    pub fn and_not_not_len(&self, b: &Tidset, c: &Tidset) -> usize {
        debug_assert_eq!(self.universe, b.universe);
        debug_assert_eq!(self.universe, c.universe);
        match (&self.repr, &b.repr, &c.repr) {
            (Repr::Dense(x), Repr::Dense(y), Repr::Dense(z)) => x.and_not_not_len(y, z),
            (Repr::Sparse(a), _, _) => a
                .iter()
                .filter(|&&t| !b.contains(t as usize) && !c.contains(t as usize))
                .count(),
            (Repr::Dense(x), Repr::Dense(y), Repr::Sparse(cs)) => {
                // |a\b| − |(a\b) ∩ c|, the sparse correction-column iterated.
                x.difference_len(y)
                    - cs.iter()
                        .filter(|&&t| x.contains(t as usize) && !y.contains(t as usize))
                        .count()
            }
            (Repr::Dense(x), Repr::Sparse(bs), Repr::Dense(z)) => {
                x.difference_len(z)
                    - bs.iter()
                        .filter(|&&t| x.contains(t as usize) && !z.contains(t as usize))
                        .count()
            }
            (Repr::Dense(x), Repr::Sparse(bs), Repr::Sparse(cs)) => {
                // Inclusion–exclusion; every sum iterates a sparse operand.
                let ab = bs.iter().filter(|&&t| x.contains(t as usize)).count();
                let ac = cs.iter().filter(|&&t| x.contains(t as usize)).count();
                let (s, l) = if bs.len() <= cs.len() {
                    (bs, cs)
                } else {
                    (cs, bs)
                };
                let abc = s
                    .iter()
                    .filter(|&&t| x.contains(t as usize) && sparse_contains(l, t))
                    .count();
                x.len() - ab - ac + abc
            }
        }
    }

    /// `true` iff `self ∩ other = ∅`, with early exit.
    #[inline]
    pub fn is_disjoint(&self, other: &Tidset) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a.is_disjoint(b),
            (Repr::Sparse(a), _) => !a.iter().any(|&t| other.contains(t as usize)),
            (_, Repr::Sparse(b)) => !b.iter().any(|&t| self.contains(t as usize)),
        }
    }

    /// `true` iff `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &Tidset) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a.is_subset(b),
            (Repr::Sparse(a), _) => a.iter().all(|&t| other.contains(t as usize)),
            (Repr::Dense(_), Repr::Sparse(b)) => {
                self.len() <= b.len() && self.iter().all(|t| sparse_contains(b, t as u32))
            }
        }
    }

    /// `true` iff `(self ∩ other) ⊆ of` — the closed miner's duplicate /
    /// absorption check, without materialising the intersection.
    #[inline]
    pub fn and_is_subset(&self, other: &Tidset, of: &Tidset) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        debug_assert_eq!(self.universe, of.universe);
        match (&self.repr, &other.repr, &of.repr) {
            (Repr::Sparse(a), _, _) => !a
                .iter()
                .any(|&t| other.contains(t as usize) && !of.contains(t as usize)),
            (_, Repr::Sparse(b), _) => !b
                .iter()
                .any(|&t| self.contains(t as usize) && !of.contains(t as usize)),
            (Repr::Dense(x), Repr::Dense(y), Repr::Dense(z)) => x.and_is_subset(y, z),
            (Repr::Dense(x), Repr::Dense(y), Repr::Sparse(zs)) => {
                let mut off = 0usize;
                for t in x.iter_and(y) {
                    let t = t as u32;
                    off += gallop_to(&zs[off..], t);
                    if off >= zs.len() || zs[off] != t {
                        return false;
                    }
                    off += 1;
                }
                true
            }
        }
    }

    /// `Σ weights[t]` over the tids — **bit-identical** across
    /// representations: the sparse path replays the dense kernel's
    /// per-word dual-accumulator order exactly, so bound values (and hence
    /// pruning decisions and models) never depend on the representation.
    #[inline]
    pub fn weighted_len(&self, weights: &[f64]) -> f64 {
        match &self.repr {
            Repr::Dense(bm) => bm.weighted_len(weights),
            Repr::Sparse(tids) => {
                let mut even = 0.0f64;
                let mut odd = 0.0f64;
                let mut i = 0usize;
                while i < tids.len() {
                    let word = tids[i] >> 6;
                    let mut parity = false;
                    while i < tids.len() && tids[i] >> 6 == word {
                        let w = weights[tids[i] as usize];
                        if parity {
                            odd += w;
                        } else {
                            even += w;
                        }
                        parity = !parity;
                        i += 1;
                    }
                }
                even + odd
            }
        }
    }

    /// `Σ weights[t]` over `self \ other`, ascending-order single
    /// accumulator in every representation (bit-identical across them;
    /// seeded with `-0.0` like `Iterator::sum::<f64>` so even the empty
    /// sum's sign bit matches the dense kernel).
    #[inline]
    pub fn difference_weight(&self, other: &Tidset, weights: &[f64]) -> f64 {
        debug_assert_eq!(self.universe, other.universe);
        let mut sum = -0.0;
        for t in self.iter() {
            if !other.contains(t) {
                sum += weights[t];
            }
        }
        sum
    }

    /// Iterates `self \ other` in ascending order without materialising
    /// the difference: dense×dense streams the fused masked word scan
    /// ([`Bitmap::iter_and_not`]), any sparse operand probes per tid.
    pub fn iter_difference<'a>(&'a self, other: &'a Tidset) -> DifferenceIter<'a> {
        debug_assert_eq!(self.universe, other.universe);
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => DifferenceIter::Masked(a.iter_and_not(b)),
            _ => DifferenceIter::Probe {
                it: self.iter(),
                other,
            },
        }
    }

    /// Jaccard coefficient `|A∩B| / |A∪B|`; `0.0` when both sets are empty.
    pub fn jaccard(&self, other: &Tidset) -> f64 {
        let union = self.union_len(other);
        if union == 0 {
            0.0
        } else {
            self.intersection_len(other) as f64 / union as f64
        }
    }

    /// A stable 64-bit fingerprint — **representation-independent**: the
    /// sparse path synthesises the dense word stream (zero words included)
    /// and feeds it through the same FNV-1a fold, so sparse and dense
    /// copies of one set hash identically and existing identity checks /
    /// cache keys work unchanged.
    pub fn fingerprint(&self) -> u64 {
        match &self.repr {
            Repr::Dense(bm) => bm.fingerprint(),
            Repr::Sparse(tids) => {
                let n_words = self.universe.div_ceil(WORD_BITS);
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                let mut i = 0usize;
                for w in 0..n_words as u32 {
                    let mut word = 0u64;
                    while i < tids.len() && tids[i] >> 6 == w {
                        word |= 1u64 << (tids[i] & 63);
                        i += 1;
                    }
                    h ^= word;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            }
        }
    }
}

impl PartialEq for Tidset {
    /// Set equality — representation-independent.
    fn eq(&self, other: &Self) -> bool {
        if self.universe != other.universe {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => a == b,
            (Repr::Dense(a), Repr::Dense(b)) => a == b,
            (Repr::Sparse(a), Repr::Dense(b)) | (Repr::Dense(b), Repr::Sparse(a)) => {
                a.len() == b.len() && a.iter().map(|&t| t as usize).eq(b.iter())
            }
        }
    }
}

impl Eq for Tidset {}

impl fmt::Debug for Tidset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over `self \ other` (see [`Tidset::iter_difference`]).
pub enum DifferenceIter<'a> {
    /// Dense×dense: the bitmap kernel's masked word scan.
    Masked(crate::bitmap::MaskedBitIter<'a>),
    /// At least one sparse operand: walk `self`, probe `other` per tid.
    Probe {
        /// Tids of the left operand, ascending.
        it: TidIter<'a>,
        /// The subtrahend probed per tid.
        other: &'a Tidset,
    },
}

impl Iterator for DifferenceIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            DifferenceIter::Masked(it) => it.next(),
            DifferenceIter::Probe { it, other } => it.by_ref().find(|&t| !other.contains(t)),
        }
    }
}

/// Iterator over the tids of a [`Tidset`], ascending.
pub enum TidIter<'a> {
    /// Sparse backing: a slice walk.
    Sparse(std::slice::Iter<'a, u32>),
    /// Dense backing: the bitmap's bit scanner.
    Dense(BitIter<'a>),
}

impl Iterator for TidIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            TidIter::Sparse(it) => it.next().map(|&t| t as usize),
            TidIter::Dense(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Tests that flip the global mode or assert concrete representations
    /// serialize through this lock and restore [`TidsetMode::Adaptive`].
    static MODE_LOCK: Mutex<()> = Mutex::new(());

    struct ModeGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

    impl ModeGuard {
        fn adaptive() -> ModeGuard {
            let guard = MODE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            set_tidset_mode(TidsetMode::Adaptive);
            ModeGuard(guard)
        }
    }

    impl Drop for ModeGuard {
        fn drop(&mut self) {
            set_tidset_mode(TidsetMode::Adaptive);
        }
    }

    fn ts(universe: usize, tids: &[usize]) -> Tidset {
        Tidset::from_indices(universe, tids.iter().copied())
    }

    #[test]
    fn representation_follows_threshold() {
        let _guard = ModeGuard::adaptive();
        let universe = 6400; // 100 words => sparse_limit = 25
        let limit = sparse_limit(universe);
        assert_eq!(limit, 25);
        for (card, sparse) in [(limit - 1, true), (limit, true), (limit + 1, false)] {
            let t = Tidset::from_indices(universe, 0..card);
            assert_eq!(t.is_sparse(), sparse, "card {card}");
            assert_eq!(t.len(), card);
        }
    }

    #[test]
    fn forced_modes_override_threshold() {
        let _guard = ModeGuard::adaptive();
        set_tidset_mode(TidsetMode::ForceDense);
        assert!(!Tidset::from_indices(640, 0..3).is_sparse());
        set_tidset_mode(TidsetMode::ForceSparse);
        assert!(Tidset::from_indices(640, 0..200).is_sparse());
    }

    #[test]
    fn and_demotes_and_union_promotes() {
        let _guard = ModeGuard::adaptive();
        let universe = 640;
        let limit = sparse_limit(universe);
        // Two dense sets whose intersection is tiny: the result demotes.
        let a = Tidset::from_indices(universe, 0..universe);
        let b = Tidset::from_indices(universe, (0..universe).filter(|i| i % 320 == 0));
        assert!(!a.is_sparse());
        let i = a.and(&b);
        assert!(i.is_sparse(), "intersection below threshold demotes");
        assert_eq!(i.to_vec(), vec![0, 320]);
        // A sparse set crossing the threshold under union promotes.
        let mut s = Tidset::from_indices(universe, 0..limit);
        assert!(s.is_sparse());
        s.union_with(&Tidset::from_indices(universe, limit..2 * limit));
        assert!(!s.is_sparse(), "union past threshold promotes");
        assert_eq!(s.len(), 2 * limit);
    }

    #[test]
    fn kernels_match_bitmap_reference_in_all_repr_combos() {
        let universe = 200;
        let a: Vec<usize> = (0..universe).filter(|i| i % 3 == 0).collect();
        let b: Vec<usize> = (0..universe).filter(|i| i % 4 == 1 || i % 7 == 0).collect();
        let c: Vec<usize> = (0..universe).filter(|i| i % 5 == 2).collect();
        let (ba, bb, bc) = (
            Bitmap::from_indices(universe, a.iter().copied()),
            Bitmap::from_indices(universe, b.iter().copied()),
            Bitmap::from_indices(universe, c.iter().copied()),
        );
        let variants = |v: &[usize]| {
            let t = ts(universe, v);
            [t.to_sparse(), t.to_dense()]
        };
        let weights: Vec<f64> = (0..universe)
            .map(|i| (i % 13) as f64 * 0.375 + 0.25)
            .collect();
        for ta in variants(&a) {
            for tb in variants(&b) {
                assert_eq!(ta.intersection_len(&tb), ba.intersection_len(&bb));
                assert_eq!(ta.union_len(&tb), ba.union_len(&bb));
                assert_eq!(ta.difference_len(&tb), ba.difference_len(&bb));
                assert_eq!(ta.and(&tb).to_vec(), ba.and(&bb).to_vec());
                assert_eq!(ta.difference(&tb).to_vec(), ba.and_not(&bb).to_vec());
                assert_eq!(ta.is_subset(&tb), ba.is_subset(&bb));
                assert_eq!(ta.is_disjoint(&tb), ba.is_disjoint(&bb));
                assert_eq!(ta.jaccard(&tb), ba.jaccard(&bb));
                for tc in variants(&c) {
                    assert_eq!(ta.and_and_not_len(&tb, &tc), ba.and_and_not_len(&bb, &bc));
                    assert_eq!(ta.and_not_not_len(&tb, &tc), ba.and_not_not_len(&bb, &bc));
                    assert_eq!(ta.and_is_subset(&tb, &tc), ba.and_is_subset(&bb, &bc));
                }
                // fp kernels must be BIT-identical across representations.
                assert_eq!(
                    ta.weighted_len(&weights).to_bits(),
                    ba.weighted_len(&weights).to_bits(),
                    "weighted_len must be bit-identical"
                );
                assert_eq!(
                    ta.difference_weight(&tb, &weights).to_bits(),
                    ta.to_dense()
                        .difference_weight(&tb.to_dense(), &weights)
                        .to_bits(),
                    "difference_weight must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn fingerprint_is_representation_independent() {
        // Pinned contract: sparse and dense copies of one set hash
        // identically, and both equal the dense Bitmap fingerprint, so
        // perfsuite identity checks and engine cache keys are agnostic to
        // the representation mix.
        for universe in [1, 63, 64, 65, 200, 1000] {
            for stride in [1usize, 2, 7, 64, 97] {
                let tids: Vec<usize> = (0..universe).step_by(stride).collect();
                let t = ts(universe, &tids);
                let bm = Bitmap::from_indices(universe, tids.iter().copied());
                assert_eq!(
                    t.to_sparse().fingerprint(),
                    t.to_dense().fingerprint(),
                    "universe {universe} stride {stride}"
                );
                assert_eq!(t.to_sparse().fingerprint(), bm.fingerprint());
            }
            let empty = Tidset::new(universe);
            assert_eq!(
                empty.to_sparse().fingerprint(),
                Bitmap::new(universe).fingerprint()
            );
        }
    }

    #[test]
    fn equality_is_representation_independent() {
        let t = ts(300, &[0, 63, 64, 65, 199, 299]);
        assert_eq!(t.to_sparse(), t.to_dense());
        assert_eq!(t.to_dense(), t.to_sparse());
        assert_ne!(t.to_sparse(), ts(300, &[0, 63]).to_dense());
        assert_ne!(ts(300, &[1]), ts(301, &[1]), "universe is part of identity");
    }

    #[test]
    fn galloping_merge_matches_linear() {
        // Skewed sizes trigger the gallop path; the result must match the
        // straightforward merge.
        let small: Vec<u32> = vec![5, 64, 65, 900, 901];
        let large: Vec<u32> = (0..1000).filter(|i| i % 2 == 1).collect();
        let expect: Vec<u32> = small
            .iter()
            .copied()
            .filter(|t| large.contains(t))
            .collect();
        assert_eq!(sparse_intersect(&small, &large), expect);
        assert_eq!(sparse_intersect(&large, &small), expect);
        assert_eq!(sparse_intersect_count(&small, &large), expect.len());
    }

    #[test]
    fn full_and_empty() {
        let _guard = ModeGuard::adaptive();
        for universe in [0, 1, 70, 640] {
            let full = Tidset::full(universe);
            assert_eq!(full.len(), universe);
            assert_eq!(full.to_vec(), (0..universe).collect::<Vec<_>>());
            let empty = Tidset::new(universe);
            assert!(empty.is_empty());
            assert!(empty.is_subset(&full));
            assert!(empty.is_disjoint(&full));
        }
    }

    #[test]
    fn in_place_ops_match_allocating() {
        let a = ts(200, &[0, 5, 64, 65, 128, 199]);
        let b = ts(200, &[5, 64, 100, 199]);
        for (ta, tb) in [
            (a.to_sparse(), b.to_dense()),
            (a.to_dense(), b.to_sparse()),
            (a.to_sparse(), b.to_sparse()),
            (a.to_dense(), b.to_dense()),
        ] {
            let mut x = ta.clone();
            x.intersect_with(&tb);
            assert_eq!(x, ta.and(&tb));
            let mut y = ta.clone();
            y.subtract(&tb);
            assert_eq!(y, ta.difference(&tb));
            let mut z = ta.clone();
            z.union_with(&tb);
            assert_eq!(z.len(), ta.union_len(&tb));
            let mut out = Tidset::new(200);
            ta.and_into(&tb, &mut out);
            assert_eq!(out, ta.and(&tb));
        }
    }

    #[test]
    fn heap_bytes_reflect_representation() {
        let t = ts(6400, &[1, 2, 3]);
        assert_eq!(t.to_sparse().heap_bytes(), 12);
        assert_eq!(t.to_dense().heap_bytes(), dense_bytes(6400));
        assert_eq!(dense_bytes(6400), 100 * 8);
    }
}
