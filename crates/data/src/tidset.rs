//! Adaptive sparse / dense / run-length tidsets.
//!
//! Every tidset in the workspace — per-item columns of the dataset, mining
//! intersections, the cover state's covered/error columns, the SELECT/EXACT
//! seed caches — used to be a fixed-width dense [`Bitmap`] over
//! `n_transactions` bits, so on large-sparse corpora (support ≪ n) every
//! fused popcount kernel scanned all words regardless of how few bits were
//! set. [`Tidset`] is a roaring-style three-variant representation:
//!
//! * **`Dense`** — the word-parallel [`Bitmap`], unbeatable once a set
//!   covers a meaningful fraction of the universe with scattered bits;
//! * **`Sparse`** — a sorted `Vec<u32>` of tids, work-*proportional* in
//!   the cardinality instead of the universe, with sparse×sparse set ops
//!   as SIMD block merges / galloping merges (see [`crate::simd_merge`]);
//! * **`Runs`** — a sorted list of half-open `[start, end)` intervals
//!   (canonical: non-empty, non-overlapping, non-adjacent), so clustered
//!   tidsets — consecutive tids from sorted/temporal corpora — cost
//!   O(runs) instead of O(cardinality) or O(words).
//!
//! The representation flips adaptively around kernel-cost breakevens:
//! below [`sparse_limit`] (a quarter of the dense word count — see its
//! docs for why the looser memory breakeven is the wrong flip point) a set
//! is stored as runs when `n_runs ≤ card/4` (runs then beat sparse on both
//! time and memory — 8 bytes/run vs 4 bytes/tid) and sparse otherwise;
//! above the limit it is stored as runs when `n_runs ≤ sparse_limit`
//! (interval ops then beat word scans) and dense otherwise. Every kernel
//! accepts **any combination** of operand representations. Representation
//! is an invisible performance detail: all operations — including the
//! floating-point [`Tidset::weighted_len`] / [`Tidset::difference_weight`]
//! accumulations and [`Tidset::fingerprint`] — produce **bit-identical
//! results** for the same set regardless of representation (pinned by
//! unit and property tests), so models fitted under forced-sparse,
//! forced-dense, forced-runs and adaptive modes are exactly equal.
//!
//! [`TidsetMode`] selects the policy process-wide (`TWOVIEW_TIDSET_MODE`
//! env: `adaptive` | `dense` | `sparse` | `runs`); the forced modes exist
//! for differential testing and for the `perfsuite` baseline timings. The
//! sparse merge kernels additionally honour `TWOVIEW_TIDSET_KERNEL`
//! (`simd` | `scalar`, see [`crate::simd_merge`]).

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::bitmap::{BitIter, Bitmap};
use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::simd_merge::{self, gallop_to};

/// Number of bits per dense storage word.
const WORD_BITS: usize = 64;

/// Representation policy for newly built / rebalanced tidsets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TidsetMode {
    /// Pick per set: runs / sparse / dense by the breakeven rules in the
    /// module docs (default).
    Adaptive = 0,
    /// Always dense — the pre-adaptive behaviour, kept as the perfsuite
    /// baseline and for differential testing.
    ForceDense = 1,
    /// Always sparse — exercises the sparse kernels on any data.
    ForceSparse = 2,
    /// Always run-length — exercises the interval kernels on any data.
    ForceRuns = 3,
}

fn mode_cell() -> &'static AtomicU8 {
    static CELL: OnceLock<AtomicU8> = OnceLock::new();
    CELL.get_or_init(|| {
        let initial = match std::env::var("TWOVIEW_TIDSET_MODE").as_deref() {
            Ok("dense") => TidsetMode::ForceDense,
            Ok("sparse") => TidsetMode::ForceSparse,
            Ok("runs") => TidsetMode::ForceRuns,
            Ok("adaptive") | Err(_) => TidsetMode::Adaptive,
            Ok(other) => {
                // A typo'd forced mode silently measuring adaptive would
                // invalidate a differential run; make the fallback loud.
                eprintln!(
                    "twoview-data: unrecognized TWOVIEW_TIDSET_MODE={other:?} \
                     (expected adaptive|dense|sparse|runs); using adaptive"
                );
                TidsetMode::Adaptive
            }
        };
        AtomicU8::new(initial as u8)
    })
}

/// The process-wide representation policy (see [`set_tidset_mode`]).
pub fn tidset_mode() -> TidsetMode {
    match mode_cell().load(Ordering::Relaxed) {
        1 => TidsetMode::ForceDense,
        2 => TidsetMode::ForceSparse,
        3 => TidsetMode::ForceRuns,
        _ => TidsetMode::Adaptive,
    }
}

/// Sets the process-wide representation policy.
///
/// Results are representation-independent, so flipping the mode between
/// runs never changes any model — only memory use and speed. Intended for
/// benchmarks and differential tests; the default ([`TidsetMode::Adaptive`],
/// overridable via `TWOVIEW_TIDSET_MODE`) is right for production.
pub fn set_tidset_mode(mode: TidsetMode) {
    mode_cell().store(mode as u8, Ordering::Relaxed);
}

/// Largest cardinality at which a non-run-compressible set is preferred
/// sparse in adaptive mode: a quarter of the dense word count (clamped to
/// at least 4 so near-empty sets over tiny universes still store sparse).
///
/// This is the **time** breakeven, not the memory one. A sparse operand
/// costs ≈2–3 cycles per tid (probe loops, merges), while the fused dense
/// kernels stream ≈0.5–1 cycle per word across all operands — so sparse
/// only wins once `card ≲ words/4`. The memory breakeven (`2·words`,
/// where `4·card` bytes undercut `8·words`) is far looser; choosing it
/// made whole item columns sparse and *slowed* mining ~10× on sparse
/// corpora, because prefix-tidset × column intersections turned from O(1)
/// dense probes into galloping binary searches. Below `words/4` the
/// common sparse sets (deep DFS intersections, pair seed tidsets) win on
/// both axes at once.
///
/// The same value doubles as the run-count ceiling above which a large
/// set stops being stored as runs: interval ops cost O(runs) against the
/// dense kernels' O(words), so runs win while `n_runs ≤ words/4`.
#[inline]
pub fn sparse_limit(universe: usize) -> usize {
    (universe.div_ceil(WORD_BITS) / 4).max(4)
}

/// Heap bytes of a dense tidset over `universe` — what the old all-dense
/// layout paid per set regardless of cardinality. Used by the cache-budget
/// accounting and the perfsuite bytes-saved statistic.
#[inline]
pub fn dense_bytes(universe: usize) -> usize {
    universe.div_ceil(WORD_BITS) * 8
}

#[derive(Clone)]
enum Repr {
    /// Sorted, deduplicated tids.
    Sparse(Vec<u32>),
    Dense(Bitmap),
    /// Sorted half-open `[start, end)` runs — canonical: every run
    /// non-empty, runs non-overlapping and non-adjacent (maximal).
    Runs(Vec<(u32, u32)>),
}

/// The representation a set should rebalance into (see `choose_repr`).
#[derive(Clone, Copy, PartialEq, Eq)]
enum ReprKind {
    Sparse,
    Dense,
    Runs,
}

/// A set of transaction ids over the fixed universe `0..universe`, stored
/// sparse, dense, or run-length (see the module docs).
#[derive(Clone)]
pub struct Tidset {
    universe: usize,
    repr: Repr,
}

// ------------------------------------------------------------------ sparse
// slice helpers (sorted unique u32 lists)

fn sparse_union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[inline]
fn sparse_contains(a: &[u32], x: u32) -> bool {
    a.binary_search(&x).is_ok()
}

// -------------------------------------------------------------------- runs
// slice helpers (canonical sorted half-open interval lists)

/// Total cardinality of a canonical run list.
#[inline]
fn runs_card(runs: &[(u32, u32)]) -> usize {
    runs.iter().map(|&(s, e)| (e - s) as usize).sum()
}

/// Collects ascending unique tids into a canonical (maximal) run list.
fn runs_collect(it: impl Iterator<Item = u32>) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    for t in it {
        match out.last_mut() {
            Some((_, e)) if *e == t => *e = t + 1,
            _ => out.push((t, t + 1)),
        }
    }
    out
}

fn runs_from_sorted(tids: &[u32]) -> Vec<(u32, u32)> {
    runs_collect(tids.iter().copied())
}

#[inline]
fn runs_contains(runs: &[(u32, u32)], t: u32) -> bool {
    let idx = runs.partition_point(|&(s, _)| s <= t);
    idx > 0 && runs[idx - 1].1 > t
}

/// Interval intersection; canonical inputs give a canonical output (every
/// output gap contains a gap of at least one input).
fn runs_intersect(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// `|a ∩ b|` over interval lists without materialising.
fn runs_intersect_card(a: &[(u32, u32)], b: &[(u32, u32)]) -> usize {
    let mut card = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            card += (hi - lo) as usize;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    card
}

/// Interval union with coalescing of overlapping *and adjacent* runs, so
/// the output is canonical even where the inputs touch.
fn runs_union(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let r = if j >= b.len() || (i < a.len() && a[i].0 <= b[j].0) {
            let r = a[i];
            i += 1;
            r
        } else {
            let r = b[j];
            j += 1;
            r
        };
        match out.last_mut() {
            Some(last) if r.0 <= last.1 => last.1 = last.1.max(r.1),
            _ => out.push(r),
        }
    }
    out
}

/// Interval difference `a \ b`; canonical output (every split gap is a
/// `b` run of length ≥ 1).
fn runs_difference(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for &(s, e) in a {
        let mut lo = s;
        while lo < e {
            while j < b.len() && b[j].1 <= lo {
                j += 1;
            }
            if j >= b.len() || b[j].0 >= e {
                out.push((lo, e));
                break;
            }
            let (bs, be) = b[j];
            if bs > lo {
                out.push((lo, bs));
            }
            if be >= e {
                break;
            }
            lo = be;
        }
    }
    out
}

/// `a ⊆ b` for canonical run lists: each `a` run must sit inside a single
/// `b` run (it cannot span a real gap).
fn runs_is_subset(a: &[(u32, u32)], b: &[(u32, u32)]) -> bool {
    let mut j = 0usize;
    for &(s, e) in a {
        while j < b.len() && b[j].1 <= s {
            j += 1;
        }
        if j >= b.len() || b[j].0 > s || b[j].1 < e {
            return false;
        }
    }
    true
}

fn runs_is_disjoint(a: &[(u32, u32)], b: &[(u32, u32)]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i].1 <= b[j].0 {
            i += 1;
        } else if b[j].1 <= a[i].0 {
            j += 1;
        } else {
            return false;
        }
    }
    true
}

/// Walks sorted `tids`, emitting those inside (`keep_in`) or outside the
/// run list, with a single advancing run cursor — O(|tids| + |runs|).
fn sparse_runs_visit(tids: &[u32], runs: &[(u32, u32)], keep_in: bool, mut emit: impl FnMut(u32)) {
    let mut j = 0usize;
    for &t in tids {
        while j < runs.len() && runs[j].1 <= t {
            j += 1;
        }
        let inside = j < runs.len() && runs[j].0 <= t;
        if inside == keep_in {
            emit(t);
        }
    }
}

fn sparse_runs_filter(tids: &[u32], runs: &[(u32, u32)], keep_in: bool) -> Vec<u32> {
    let mut out = Vec::new();
    sparse_runs_visit(tids, runs, keep_in, |t| out.push(t));
    out
}

fn sparse_runs_count(tids: &[u32], runs: &[(u32, u32)], keep_in: bool) -> usize {
    let mut n = 0usize;
    sparse_runs_visit(tids, runs, keep_in, |_| n += 1);
    n
}

/// Visits the run list as `(word_index, word_mask)` pairs in ascending
/// word order, **merging** runs that share a storage word into a single
/// emission (the float replay kernels depend on one mask per word).
/// Returns `false` iff `f` aborted the scan by returning `false`.
#[inline]
fn scan_run_words(runs: &[(u32, u32)], mut f: impl FnMut(usize, u64) -> bool) -> bool {
    let mut cur_word = 0usize;
    let mut cur_mask = 0u64;
    let mut have = false;
    for &(s, e) in runs {
        let mut pos = s as u64;
        let end = e as u64;
        while pos < end {
            let wi = (pos >> 6) as usize;
            if have && wi != cur_word {
                if !f(cur_word, cur_mask) {
                    return false;
                }
                cur_mask = 0;
            }
            cur_word = wi;
            have = true;
            let hi = end.min(((wi as u64) + 1) << 6);
            let len = hi - pos;
            let m = if len == 64 {
                !0u64
            } else {
                ((1u64 << len) - 1) << (pos & 63)
            };
            cur_mask |= m;
            pos = hi;
        }
    }
    !have || f(cur_word, cur_mask)
}

fn bitmap_from_runs(universe: usize, runs: &[(u32, u32)]) -> Bitmap {
    let mut bm = Bitmap::new(universe);
    for &(s, e) in runs {
        bm.insert_range(s as usize, e as usize);
    }
    bm
}

/// `Σ |bm ∩ run|` — the run×dense intersection cardinality, one masked
/// popcount range per run.
fn runs_dense_card(runs: &[(u32, u32)], bm: &Bitmap) -> usize {
    runs.iter()
        .map(|&(s, e)| bm.range_len(s as usize, e as usize))
        .sum()
}

/// Tids of `runs ∩ bm`, ascending, via masked word extraction.
fn runs_and_dense_tids(runs: &[(u32, u32)], bm: &Bitmap) -> Vec<u32> {
    let words = bm.words();
    let mut out = Vec::new();
    scan_run_words(runs, |wi, mask| {
        let mut m = mask & words[wi];
        while m != 0 {
            out.push(((wi as u32) << 6) + m.trailing_zeros());
            m &= m - 1;
        }
        true
    });
    out
}

/// Tids of `runs \ bm`, ascending, via masked word extraction.
fn runs_not_dense_tids(runs: &[(u32, u32)], bm: &Bitmap) -> Vec<u32> {
    let words = bm.words();
    let mut out = Vec::new();
    scan_run_words(runs, |wi, mask| {
        let mut m = mask & !words[wi];
        while m != 0 {
            out.push(((wi as u32) << 6) + m.trailing_zeros());
            m &= m - 1;
        }
        true
    });
    out
}

impl Tidset {
    /// Whether a set of `card` elements over `universe` may take the
    /// known-cardinality *sparse* fast paths under the current
    /// [`tidset_mode`] (see [`Tidset::and_with_card`]).
    #[inline]
    fn choose_sparse(card: usize, universe: usize) -> bool {
        match tidset_mode() {
            TidsetMode::Adaptive => card <= sparse_limit(universe),
            TidsetMode::ForceDense | TidsetMode::ForceRuns => false,
            TidsetMode::ForceSparse => true,
        }
    }

    /// `true` iff the current contents compress to at most `cap` maximal
    /// runs (early-exits the scan once `cap` is exceeded).
    fn runs_within(&self, cap: usize) -> bool {
        match &self.repr {
            Repr::Runs(runs) => runs.len() <= cap,
            Repr::Sparse(tids) => {
                let mut n = 0usize;
                let mut i = 0usize;
                while i < tids.len() {
                    n += 1;
                    if n > cap {
                        return false;
                    }
                    let mut j = i + 1;
                    while j < tids.len() && tids[j] == tids[j - 1] + 1 {
                        j += 1;
                    }
                    i = j;
                }
                true
            }
            Repr::Dense(bm) => {
                // A run starts at every set bit whose predecessor is clear:
                // w & !(w<<1 | carry-in), counted word-parallel.
                let mut n = 0usize;
                let mut carry = 0u64;
                for &w in bm.words() {
                    n += (w & !((w << 1) | carry)).count_ones() as usize;
                    if n > cap {
                        return false;
                    }
                    carry = w >> 63;
                }
                true
            }
        }
    }

    /// The representation this set's contents should use under the
    /// current mode — the breakeven policy from the module docs.
    fn choose_repr(&self) -> ReprKind {
        match tidset_mode() {
            TidsetMode::ForceDense => ReprKind::Dense,
            TidsetMode::ForceSparse => ReprKind::Sparse,
            TidsetMode::ForceRuns => ReprKind::Runs,
            TidsetMode::Adaptive => {
                let card = self.len();
                let limit = sparse_limit(self.universe);
                if card <= limit {
                    // Runs beat sparse on time (O(runs) vs O(card)) and
                    // memory (8·runs vs 4·card) once runs ≤ card/4.
                    if self.runs_within(card / 4) {
                        ReprKind::Runs
                    } else {
                        ReprKind::Sparse
                    }
                } else if self.runs_within(limit) {
                    // Runs beat the dense word scan once runs ≤ words/4,
                    // the same constant as the sparse/dense breakeven.
                    ReprKind::Runs
                } else {
                    ReprKind::Dense
                }
            }
        }
    }

    /// The empty tidset over `0..universe`.
    pub fn new(universe: usize) -> Tidset {
        let mut out = Tidset {
            universe,
            repr: Repr::Sparse(Vec::new()),
        };
        out.renormalize();
        out
    }

    /// The full tidset `0..universe` — a single run, so O(1) memory in
    /// adaptive mode.
    pub fn full(universe: usize) -> Tidset {
        let runs = if universe == 0 {
            Vec::new()
        } else {
            vec![(0u32, universe as u32)]
        };
        let mut out = Tidset {
            universe,
            repr: Repr::Runs(runs),
        };
        out.renormalize();
        out
    }

    /// Builds a tidset from a **sorted, deduplicated** tid list.
    ///
    /// # Panics
    /// Debug-panics when the list is unsorted, has duplicates, or contains
    /// a tid `>= universe`.
    pub fn from_sorted(universe: usize, tids: Vec<u32>) -> Tidset {
        debug_assert!(tids.windows(2).all(|w| w[0] < w[1]), "unsorted tid list");
        debug_assert!(tids.last().is_none_or(|&t| (t as usize) < universe));
        let mut out = Tidset {
            universe,
            repr: Repr::Sparse(tids),
        };
        out.renormalize();
        out
    }

    /// Builds a tidset from arbitrary (unsorted, possibly repeated) indices.
    ///
    /// # Panics
    /// Panics if any index is `>= universe`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(universe: usize, indices: I) -> Tidset {
        Tidset::from_bitmap(Bitmap::from_indices(universe, indices))
    }

    /// Converts a dense bitmap, choosing the representation adaptively.
    pub fn from_bitmap(bitmap: Bitmap) -> Tidset {
        let universe = bitmap.capacity();
        let mut out = Tidset {
            universe,
            repr: Repr::Dense(bitmap),
        };
        out.renormalize();
        out
    }

    /// Re-chooses the representation for the current cardinality and mode —
    /// the promotion/demotion step every constructor and mutating op ends
    /// with.
    fn renormalize(&mut self) {
        let new = match (&self.repr, self.choose_repr()) {
            (Repr::Sparse(_), ReprKind::Sparse)
            | (Repr::Dense(_), ReprKind::Dense)
            | (Repr::Runs(_), ReprKind::Runs) => return,
            (Repr::Sparse(tids), ReprKind::Dense) => Repr::Dense(Bitmap::from_indices(
                self.universe,
                tids.iter().map(|&t| t as usize),
            )),
            (Repr::Sparse(tids), ReprKind::Runs) => Repr::Runs(runs_from_sorted(tids)),
            (Repr::Dense(bm), ReprKind::Sparse) => {
                Repr::Sparse(bm.iter().map(|t| t as u32).collect())
            }
            (Repr::Dense(bm), ReprKind::Runs) => {
                Repr::Runs(runs_collect(bm.iter().map(|t| t as u32)))
            }
            (Repr::Runs(runs), ReprKind::Sparse) => {
                let mut tids = Vec::with_capacity(runs_card(runs));
                for &(s, e) in runs {
                    tids.extend(s..e);
                }
                Repr::Sparse(tids)
            }
            (Repr::Runs(runs), ReprKind::Dense) => {
                Repr::Dense(bitmap_from_runs(self.universe, runs))
            }
        };
        self.repr = new;
    }

    /// The size of the universe this tidset ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// `true` if currently stored sparse (a performance detail — never
    /// observable through set values).
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// `true` if currently stored run-length (a performance detail — never
    /// observable through set values).
    #[inline]
    pub fn is_runs(&self) -> bool {
        matches!(self.repr, Repr::Runs(_))
    }

    /// Heap bytes of the current representation (`4·card` sparse,
    /// `8·n_runs` run-length, `8·⌈universe/64⌉` dense). The cache budgets
    /// count these actual bytes, so sparse and run tidsets buy
    /// proportionally more cache hits.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Sparse(tids) => tids.len() * 4,
            Repr::Dense(_) => dense_bytes(self.universe),
            Repr::Runs(runs) => runs.len() * 8,
        }
    }

    /// A copy forced into the sparse representation (testing/benching aid).
    pub fn to_sparse(&self) -> Tidset {
        Tidset {
            universe: self.universe,
            repr: Repr::Sparse(self.iter().map(|t| t as u32).collect()),
        }
    }

    /// A copy forced into the dense representation (testing/benching aid).
    pub fn to_dense(&self) -> Tidset {
        Tidset {
            universe: self.universe,
            repr: Repr::Dense(Bitmap::from_indices(self.universe, self.iter())),
        }
    }

    /// A copy forced into the run-length representation (testing/benching
    /// aid).
    pub fn to_runs(&self) -> Tidset {
        Tidset {
            universe: self.universe,
            repr: Repr::Runs(runs_collect(self.iter().map(|t| t as u32))),
        }
    }

    /// Number of tids in the set.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(tids) => tids.len(),
            Repr::Dense(bm) => bm.len(),
            Repr::Runs(runs) => runs_card(runs),
        }
    }

    /// `true` if no tid is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Sparse(tids) => tids.is_empty(),
            Repr::Dense(bm) => bm.is_empty(),
            Repr::Runs(runs) => runs.is_empty(),
        }
    }

    /// Tests membership of `t`.
    #[inline]
    pub fn contains(&self, t: usize) -> bool {
        match &self.repr {
            Repr::Sparse(tids) => sparse_contains(tids, t as u32),
            Repr::Dense(bm) => bm.contains(t),
            Repr::Runs(runs) => runs_contains(runs, t as u32),
        }
    }

    /// Iterates the tids in increasing order.
    pub fn iter(&self) -> TidIter<'_> {
        match &self.repr {
            Repr::Sparse(tids) => TidIter::Sparse(tids.iter()),
            Repr::Dense(bm) => TidIter::Dense(bm.iter()),
            Repr::Runs(runs) => TidIter::Runs {
                runs: runs.iter(),
                cur: 0..0,
            },
        }
    }

    /// Collects the tids into a vector (ascending order).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The smallest tid, if any.
    pub fn first(&self) -> Option<usize> {
        match &self.repr {
            Repr::Sparse(tids) => tids.first().map(|&t| t as usize),
            Repr::Dense(bm) => bm.first(),
            Repr::Runs(runs) => runs.first().map(|&(s, _)| s as usize),
        }
    }

    // ------------------------------------------------------------ kernels

    /// Allocating intersection, result representation chosen adaptively —
    /// the miners' child-tidset constructor.
    pub fn and(&self, other: &Tidset) -> Tidset {
        debug_assert_eq!(self.universe, other.universe);
        let repr = match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                let mut out = Vec::with_capacity(a.len().min(b.len()));
                simd_merge::intersect_into(a, b, &mut out);
                Repr::Sparse(out)
            }
            (Repr::Sparse(a), Repr::Dense(b)) => Repr::Sparse(
                a.iter()
                    .copied()
                    .filter(|&t| b.contains(t as usize))
                    .collect(),
            ),
            (Repr::Dense(a), Repr::Sparse(b)) => Repr::Sparse(
                b.iter()
                    .copied()
                    .filter(|&t| a.contains(t as usize))
                    .collect(),
            ),
            (Repr::Dense(a), Repr::Dense(b)) => Repr::Dense(a.and(b)),
            (Repr::Runs(a), Repr::Runs(b)) => Repr::Runs(runs_intersect(a, b)),
            (Repr::Runs(r), Repr::Sparse(s)) | (Repr::Sparse(s), Repr::Runs(r)) => {
                Repr::Sparse(sparse_runs_filter(s, r, true))
            }
            (Repr::Runs(r), Repr::Dense(d)) | (Repr::Dense(d), Repr::Runs(r)) => {
                if runs_card(r) * 8 > self.universe {
                    // Near-universe run mass: go through a dense temp so
                    // the cost is O(words), not O(card) bit extraction.
                    let mut bm = bitmap_from_runs(self.universe, r);
                    bm.intersect_with(d);
                    Repr::Dense(bm)
                } else {
                    Repr::Sparse(runs_and_dense_tids(r, d))
                }
            }
        };
        let mut out = Tidset {
            universe: self.universe,
            repr,
        };
        out.renormalize();
        out
    }

    /// `self ∩ other` when the result's cardinality is already known — the
    /// miners' support-check-then-materialise pattern. A known-sparse
    /// result of two dense operands is collected straight off the masked
    /// word scan, skipping the dense intermediate (and its allocation +
    /// recount) that [`Tidset::and`] would build first.
    pub fn and_with_card(&self, other: &Tidset, card: usize) -> Tidset {
        debug_assert_eq!(self.universe, other.universe);
        if let (Repr::Dense(a), Repr::Dense(b)) = (&self.repr, &other.repr) {
            if Self::choose_sparse(card, self.universe) {
                let mut tids = Vec::with_capacity(card);
                tids.extend(a.iter_and(b).map(|t| t as u32));
                debug_assert_eq!(tids.len(), card);
                let mut out = Tidset {
                    universe: self.universe,
                    repr: Repr::Sparse(tids),
                };
                out.renormalize();
                return out;
            }
        }
        self.and(other)
    }

    /// Writes `self ∩ other` into `out` (same result as [`Tidset::and`]):
    /// when all three are dense the word kernel writes into `out`'s
    /// existing buffer, and `out` then re-chooses its representation for
    /// the new cardinality like every other op.
    pub fn and_into(&self, other: &Tidset, out: &mut Tidset) {
        debug_assert_eq!(self.universe, out.universe);
        if let (Repr::Dense(a), Repr::Dense(b), Repr::Dense(o)) =
            (&self.repr, &other.repr, &mut out.repr)
        {
            a.and_into(b, o);
            out.renormalize();
            return;
        }
        *out = self.and(other);
    }

    /// In-place intersection: `self &= other`. Dense×dense runs the
    /// zero-allocation word kernel in place (then re-chooses the
    /// representation); other combinations rebuild through
    /// [`Tidset::and`].
    pub fn intersect_with(&mut self, other: &Tidset) {
        if let (Repr::Dense(a), Repr::Dense(b)) = (&mut self.repr, &other.repr) {
            a.intersect_with(b);
            self.renormalize();
            return;
        }
        let repr = std::mem::replace(&mut self.repr, Repr::Sparse(Vec::new()));
        let lhs = Tidset {
            universe: self.universe,
            repr,
        };
        *self = lhs.and(other);
    }

    /// `|self ∩ other|` without allocating; sparse×sparse runs the block
    /// merge / galloping kernel, run operands use interval arithmetic,
    /// mixed pairs probe or mask the heavier side.
    #[inline]
    pub fn intersection_len(&self, other: &Tidset) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => simd_merge::intersect_count(a, b),
            (Repr::Sparse(a), Repr::Dense(b)) | (Repr::Dense(b), Repr::Sparse(a)) => {
                a.iter().filter(|&&t| b.contains(t as usize)).count()
            }
            (Repr::Dense(a), Repr::Dense(b)) => a.intersection_len(b),
            (Repr::Runs(a), Repr::Runs(b)) => runs_intersect_card(a, b),
            (Repr::Runs(r), Repr::Sparse(s)) | (Repr::Sparse(s), Repr::Runs(r)) => {
                sparse_runs_count(s, r, true)
            }
            (Repr::Runs(r), Repr::Dense(d)) | (Repr::Dense(d), Repr::Runs(r)) => {
                runs_dense_card(r, d)
            }
        }
    }

    /// `|self ∪ other|` without allocating.
    #[inline]
    pub fn union_len(&self, other: &Tidset) -> usize {
        self.len() + other.len() - self.intersection_len(other)
    }

    /// In-place union: `self |= other`, promoting the representation when
    /// the result outgrows its breakeven.
    pub fn union_with(&mut self, other: &Tidset) {
        debug_assert_eq!(self.universe, other.universe);
        match (&mut self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a.union_with(b),
            (Repr::Dense(a), Repr::Sparse(b)) => {
                for &t in b {
                    a.insert(t as usize);
                }
            }
            (Repr::Dense(a), Repr::Runs(rb)) => {
                for &(s, e) in rb {
                    a.insert_range(s as usize, e as usize);
                }
            }
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                *a = sparse_union(a, b);
            }
            (Repr::Sparse(a), Repr::Dense(b)) => {
                // The union is at least as large as the dense operand, so
                // build on a clone of its bitmap and scatter the sparse
                // tids in — one O(words) copy plus O(card) inserts instead
                // of collect + merge + rebuild.
                let mut dense = b.clone();
                for &t in a.iter() {
                    dense.insert(t as usize);
                }
                self.repr = Repr::Dense(dense);
            }
            (Repr::Sparse(a), Repr::Runs(rb)) => {
                self.repr = Repr::Runs(runs_union(&runs_from_sorted(a), rb));
            }
            (Repr::Runs(ra), Repr::Runs(rb)) => {
                *ra = runs_union(ra, rb);
            }
            (Repr::Runs(ra), Repr::Sparse(b)) => {
                *ra = runs_union(ra, &runs_from_sorted(b));
            }
            (Repr::Runs(ra), Repr::Dense(b)) => {
                // Like sparse∪dense: the result contains the dense operand,
                // so clone its bitmap and OR the runs in as word ranges.
                let mut dense = b.clone();
                for &(s, e) in ra.iter() {
                    dense.insert_range(s as usize, e as usize);
                }
                self.repr = Repr::Dense(dense);
            }
        }
        // Re-chosen for every arm: even a dense∪dense result can coalesce
        // into few runs (e.g. the full set) under the three-way policy.
        self.renormalize();
    }

    /// Allocating difference `self \ other`, representation re-chosen for
    /// the result.
    pub fn difference(&self, other: &Tidset) -> Tidset {
        debug_assert_eq!(self.universe, other.universe);
        let repr = match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                let mut out = Vec::with_capacity(a.len());
                simd_merge::difference_into(a, b, &mut out);
                Repr::Sparse(out)
            }
            (Repr::Sparse(a), _) => Repr::Sparse(
                a.iter()
                    .copied()
                    .filter(|&t| !other.contains(t as usize))
                    .collect(),
            ),
            (Repr::Dense(a), Repr::Dense(b)) => Repr::Dense(a.and_not(b)),
            (Repr::Dense(a), Repr::Sparse(b)) => {
                let mut out = a.clone();
                for &t in b {
                    out.remove(t as usize);
                }
                Repr::Dense(out)
            }
            (Repr::Dense(a), Repr::Runs(rb)) => {
                let mut out = a.clone();
                for &(s, e) in rb {
                    out.remove_range(s as usize, e as usize);
                }
                Repr::Dense(out)
            }
            (Repr::Runs(ra), Repr::Runs(rb)) => Repr::Runs(runs_difference(ra, rb)),
            (Repr::Runs(ra), Repr::Sparse(bs)) => {
                // The sparse subtrahend is small by construction; lifting
                // it to (singleton) runs keeps the O(runs) interval walk.
                Repr::Runs(runs_difference(ra, &runs_from_sorted(bs)))
            }
            (Repr::Runs(ra), Repr::Dense(b)) => {
                if runs_card(ra) * 8 > self.universe {
                    let mut bm = bitmap_from_runs(self.universe, ra);
                    bm.subtract(b);
                    Repr::Dense(bm)
                } else {
                    Repr::Sparse(runs_not_dense_tids(ra, b))
                }
            }
        };
        let mut out = Tidset {
            universe: self.universe,
            repr,
        };
        out.renormalize();
        out
    }

    /// In-place difference: `self &= !other`.
    pub fn subtract(&mut self, other: &Tidset) {
        let repr = std::mem::replace(&mut self.repr, Repr::Sparse(Vec::new()));
        let lhs = Tidset {
            universe: self.universe,
            repr,
        };
        *self = lhs.difference(other);
    }

    /// `|self \ other|` without allocating.
    #[inline]
    pub fn difference_len(&self, other: &Tidset) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), _) => a.iter().filter(|&&t| !other.contains(t as usize)).count(),
            (Repr::Dense(a), Repr::Dense(b)) => a.difference_len(b),
            _ => self.len() - self.intersection_len(other),
        }
    }

    /// `|self ∩ b ∩ ¬c|` in one fused pass — the *hit* kernel of the
    /// columnar cover state, for every representation combination.
    #[inline]
    pub fn and_and_not_len(&self, b: &Tidset, c: &Tidset) -> usize {
        debug_assert_eq!(self.universe, b.universe);
        debug_assert_eq!(self.universe, c.universe);
        match (&self.repr, &b.repr, &c.repr) {
            (Repr::Dense(x), Repr::Dense(y), Repr::Dense(z)) => x.and_and_not_len(y, z),
            (Repr::Sparse(a), _, _) => a
                .iter()
                .filter(|&&t| b.contains(t as usize) && !c.contains(t as usize))
                .count(),
            (_, Repr::Sparse(bs), _) => bs
                .iter()
                .filter(|&&t| self.contains(t as usize) && !c.contains(t as usize))
                .count(),
            // self ∩ b is symmetric: canonicalize dense×runs to runs×dense.
            (Repr::Dense(_), Repr::Runs(_), _) => b.and_and_not_len(self, c),
            (Repr::Dense(x), Repr::Dense(y), Repr::Sparse(cs)) => {
                // |a∩b| − |a∩b∩c|, the sparse side iterated.
                x.intersection_len(y)
                    - cs.iter()
                        .filter(|&&t| x.contains(t as usize) && y.contains(t as usize))
                        .count()
            }
            (Repr::Dense(x), Repr::Dense(y), Repr::Runs(rc)) => {
                // |a∩b| − |a∩b∩c|, the run mass subtracted word-masked.
                let (xw, yw) = (x.words(), y.words());
                let mut n = 0usize;
                scan_run_words(rc, |wi, m| {
                    n += (m & xw[wi] & yw[wi]).count_ones() as usize;
                    true
                });
                x.intersection_len(y) - n
            }
            (Repr::Runs(ra), Repr::Dense(y), Repr::Dense(z)) => {
                let (yw, zw) = (y.words(), z.words());
                let mut n = 0usize;
                scan_run_words(ra, |wi, m| {
                    n += (m & yw[wi] & !zw[wi]).count_ones() as usize;
                    true
                });
                n
            }
            (Repr::Runs(ra), Repr::Dense(y), Repr::Sparse(cs)) => {
                runs_dense_card(ra, y)
                    - cs.iter()
                        .filter(|&&t| runs_contains(ra, t) && y.contains(t as usize))
                        .count()
            }
            (Repr::Runs(ra), Repr::Dense(y), Repr::Runs(rc)) => {
                runs_dense_card(ra, y) - runs_dense_card(&runs_intersect(ra, rc), y)
            }
            (Repr::Runs(ra), Repr::Runs(rb), _) => {
                let ab = runs_intersect(ra, rb);
                let abc = match &c.repr {
                    Repr::Dense(z) => runs_dense_card(&ab, z),
                    Repr::Runs(rc) => runs_intersect_card(&ab, rc),
                    Repr::Sparse(cs) => cs.iter().filter(|&&t| runs_contains(&ab, t)).count(),
                };
                runs_card(&ab) - abc
            }
        }
    }

    /// `|self ∩ ¬b ∩ ¬c|` in one fused pass — the *miss* kernel of the
    /// columnar cover state, for every representation combination.
    #[inline]
    pub fn and_not_not_len(&self, b: &Tidset, c: &Tidset) -> usize {
        debug_assert_eq!(self.universe, b.universe);
        debug_assert_eq!(self.universe, c.universe);
        // ¬b ∩ ¬c is symmetric: order the masks Dense > Runs > Sparse so
        // each combination has exactly one arm below.
        fn mask_rank(r: &Repr) -> u8 {
            match r {
                Repr::Dense(_) => 2,
                Repr::Runs(_) => 1,
                Repr::Sparse(_) => 0,
            }
        }
        let (b, c) = if mask_rank(&b.repr) < mask_rank(&c.repr) {
            (c, b)
        } else {
            (b, c)
        };
        match (&self.repr, &b.repr, &c.repr) {
            (Repr::Dense(x), Repr::Dense(y), Repr::Dense(z)) => x.and_not_not_len(y, z),
            (Repr::Sparse(a), _, _) => a
                .iter()
                .filter(|&&t| !b.contains(t as usize) && !c.contains(t as usize))
                .count(),
            (Repr::Dense(x), Repr::Dense(y), Repr::Sparse(cs)) => {
                // |a\b| − |(a\b) ∩ c|, the sparse correction-column iterated.
                x.difference_len(y)
                    - cs.iter()
                        .filter(|&&t| x.contains(t as usize) && !y.contains(t as usize))
                        .count()
            }
            (Repr::Dense(x), Repr::Dense(y), Repr::Runs(rc)) => {
                // |a\b| − |(a\b) ∩ c|, the run mass as masked range counts.
                x.difference_len(y)
                    - rc.iter()
                        .map(|&(s, e)| x.difference_len_range(y, s as usize, e as usize))
                        .sum::<usize>()
            }
            (Repr::Dense(x), Repr::Runs(rb), Repr::Runs(rc)) => {
                x.len() - runs_dense_card(&runs_union(rb, rc), x)
            }
            (Repr::Dense(x), Repr::Runs(rb), Repr::Sparse(cs)) => {
                (x.len() - runs_dense_card(rb, x))
                    - cs.iter()
                        .filter(|&&t| x.contains(t as usize) && !runs_contains(rb, t))
                        .count()
            }
            (Repr::Dense(x), Repr::Sparse(bs), Repr::Sparse(cs)) => {
                // Inclusion–exclusion; every sum iterates a sparse operand.
                let ab = bs.iter().filter(|&&t| x.contains(t as usize)).count();
                let ac = cs.iter().filter(|&&t| x.contains(t as usize)).count();
                let (s, l) = if bs.len() <= cs.len() {
                    (bs, cs)
                } else {
                    (cs, bs)
                };
                let abc = s
                    .iter()
                    .filter(|&&t| x.contains(t as usize) && sparse_contains(l, t))
                    .count();
                x.len() - ab - ac + abc
            }
            (Repr::Runs(ra), Repr::Dense(y), Repr::Dense(z)) => {
                let (yw, zw) = (y.words(), z.words());
                let mut n = 0usize;
                scan_run_words(ra, |wi, m| {
                    n += (m & !yw[wi] & !zw[wi]).count_ones() as usize;
                    true
                });
                n
            }
            (Repr::Runs(ra), Repr::Dense(y), Repr::Runs(rc)) => {
                let d = runs_difference(ra, rc);
                runs_card(&d) - runs_dense_card(&d, y)
            }
            (Repr::Runs(ra), Repr::Dense(y), Repr::Sparse(cs)) => {
                (runs_card(ra) - runs_dense_card(ra, y))
                    - cs.iter()
                        .filter(|&&t| runs_contains(ra, t) && !y.contains(t as usize))
                        .count()
            }
            (Repr::Runs(ra), Repr::Runs(rb), Repr::Runs(rc)) => {
                let d = runs_difference(ra, rb);
                runs_card(&d) - runs_intersect_card(&d, rc)
            }
            (Repr::Runs(ra), Repr::Runs(rb), Repr::Sparse(cs)) => {
                let d = runs_difference(ra, rb);
                runs_card(&d) - cs.iter().filter(|&&t| runs_contains(&d, t)).count()
            }
            (Repr::Runs(ra), Repr::Sparse(bs), Repr::Sparse(cs)) => {
                let ab = bs.iter().filter(|&&t| runs_contains(ra, t)).count();
                let ac = cs.iter().filter(|&&t| runs_contains(ra, t)).count();
                let (s, l) = if bs.len() <= cs.len() {
                    (bs, cs)
                } else {
                    (cs, bs)
                };
                let abc = s
                    .iter()
                    .filter(|&&t| runs_contains(ra, t) && sparse_contains(l, t))
                    .count();
                runs_card(ra) - ab - ac + abc
            }
            // The remaining orders were rewritten by the mask-rank swap.
            _ => unreachable!("b/c canonicalized by mask rank"),
        }
    }

    /// `true` iff `self ∩ other = ∅`, with early exit.
    #[inline]
    pub fn is_disjoint(&self, other: &Tidset) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a.is_disjoint(b),
            (Repr::Sparse(a), _) => !a.iter().any(|&t| other.contains(t as usize)),
            (_, Repr::Sparse(b)) => !b.iter().any(|&t| self.contains(t as usize)),
            (Repr::Runs(a), Repr::Runs(b)) => runs_is_disjoint(a, b),
            (Repr::Runs(r), Repr::Dense(d)) | (Repr::Dense(d), Repr::Runs(r)) => r
                .iter()
                .all(|&(s, e)| !d.range_intersects(s as usize, e as usize)),
        }
    }

    /// `true` iff `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &Tidset) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a.is_subset(b),
            (Repr::Sparse(a), Repr::Sparse(b)) => simd_merge::is_subset(a, b),
            (Repr::Sparse(a), _) => a.iter().all(|&t| other.contains(t as usize)),
            (Repr::Dense(_), Repr::Sparse(b)) => {
                self.len() <= b.len() && self.iter().all(|t| sparse_contains(b, t as u32))
            }
            (Repr::Runs(a), Repr::Runs(b)) => runs_is_subset(a, b),
            (Repr::Runs(a), Repr::Dense(b)) => {
                let bw = b.words();
                scan_run_words(a, |wi, m| (m & !bw[wi]) == 0)
            }
            (Repr::Runs(a), Repr::Sparse(b)) => {
                runs_card(a) <= b.len() && self.iter().all(|t| sparse_contains(b, t as u32))
            }
            (Repr::Dense(a), Repr::Runs(rb)) => runs_dense_card(rb, a) == a.len(),
        }
    }

    /// `true` iff `(self ∩ other) ⊆ of` — the closed miner's duplicate /
    /// absorption check, without materialising the intersection.
    #[inline]
    pub fn and_is_subset(&self, other: &Tidset, of: &Tidset) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        debug_assert_eq!(self.universe, of.universe);
        match (&self.repr, &other.repr, &of.repr) {
            (Repr::Sparse(a), _, _) => !a
                .iter()
                .any(|&t| other.contains(t as usize) && !of.contains(t as usize)),
            (_, Repr::Sparse(b), _) => !b
                .iter()
                .any(|&t| self.contains(t as usize) && !of.contains(t as usize)),
            (Repr::Dense(x), Repr::Dense(y), Repr::Dense(z)) => x.and_is_subset(y, z),
            (Repr::Dense(x), Repr::Dense(y), Repr::Sparse(zs)) => {
                let mut off = 0usize;
                for t in x.iter_and(y) {
                    let t = t as u32;
                    off += gallop_to(&zs[off..], t);
                    if off >= zs.len() || zs[off] != t {
                        return false;
                    }
                    off += 1;
                }
                true
            }
            // self ∩ other is symmetric: canonicalize dense×runs.
            (Repr::Dense(_), Repr::Runs(_), _) => other.and_is_subset(self, of),
            (Repr::Runs(ra), Repr::Dense(y), Repr::Dense(z)) => {
                let (yw, zw) = (y.words(), z.words());
                scan_run_words(ra, |wi, m| (m & yw[wi] & !zw[wi]) == 0)
            }
            // Remaining run combinations: an empty fused miss count is the
            // same predicate, and every combination of it is interval-fast.
            _ => self.and_and_not_len(other, of) == 0,
        }
    }

    /// `Σ weights[t]` over the tids — **bit-identical** across
    /// representations: the sparse and run paths replay the dense kernel's
    /// per-word dual-accumulator order exactly, so bound values (and hence
    /// pruning decisions and models) never depend on the representation.
    #[inline]
    pub fn weighted_len(&self, weights: &[f64]) -> f64 {
        match &self.repr {
            Repr::Dense(bm) => bm.weighted_len(weights),
            Repr::Sparse(tids) => {
                let mut even = 0.0f64;
                let mut odd = 0.0f64;
                let mut i = 0usize;
                while i < tids.len() {
                    let word = tids[i] >> 6;
                    let mut parity = false;
                    while i < tids.len() && tids[i] >> 6 == word {
                        let w = weights[tids[i] as usize];
                        if parity {
                            odd += w;
                        } else {
                            even += w;
                        }
                        parity = !parity;
                        i += 1;
                    }
                }
                even + odd
            }
            Repr::Runs(runs) => {
                let mut even = 0.0f64;
                let mut odd = 0.0f64;
                scan_run_words(runs, |wi, mask| {
                    let base = wi * WORD_BITS;
                    let mut m = mask;
                    let mut parity = false;
                    while m != 0 {
                        let w = weights[base + m.trailing_zeros() as usize];
                        if parity {
                            odd += w;
                        } else {
                            even += w;
                        }
                        parity = !parity;
                        m &= m - 1;
                    }
                    true
                });
                even + odd
            }
        }
    }

    /// `Σ weights[t]` over `self \ other`, ascending-order single
    /// accumulator in every representation (bit-identical across them;
    /// seeded with `-0.0` like `Iterator::sum::<f64>` so even the empty
    /// sum's sign bit matches the dense kernel).
    #[inline]
    pub fn difference_weight(&self, other: &Tidset, weights: &[f64]) -> f64 {
        debug_assert_eq!(self.universe, other.universe);
        let mut sum = -0.0;
        for t in self.iter() {
            if !other.contains(t) {
                sum += weights[t];
            }
        }
        sum
    }

    /// Iterates `self \ other` in ascending order without materialising
    /// the difference: dense×dense streams the fused masked word scan
    /// ([`Bitmap::iter_and_not`]), other combinations probe per tid.
    pub fn iter_difference<'a>(&'a self, other: &'a Tidset) -> DifferenceIter<'a> {
        debug_assert_eq!(self.universe, other.universe);
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => DifferenceIter::Masked(a.iter_and_not(b)),
            _ => DifferenceIter::Probe {
                it: self.iter(),
                other,
            },
        }
    }

    /// Jaccard coefficient `|A∩B| / |A∪B|`; `0.0` when both sets are empty.
    pub fn jaccard(&self, other: &Tidset) -> f64 {
        let union = self.union_len(other);
        if union == 0 {
            0.0
        } else {
            self.intersection_len(other) as f64 / union as f64
        }
    }

    /// A stable 64-bit fingerprint — **representation-independent**: the
    /// sparse and run paths synthesise the dense word stream (zero words
    /// included) and feed it through the same FNV-1a fold, so all three
    /// representations of one set hash identically and existing identity
    /// checks / cache keys work unchanged.
    pub fn fingerprint(&self) -> u64 {
        const FNV_MUL: u64 = 0x0000_0100_0000_01b3;
        match &self.repr {
            Repr::Dense(bm) => bm.fingerprint(),
            Repr::Sparse(tids) => {
                let n_words = self.universe.div_ceil(WORD_BITS);
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                let mut i = 0usize;
                for w in 0..n_words as u32 {
                    let mut word = 0u64;
                    while i < tids.len() && tids[i] >> 6 == w {
                        word |= 1u64 << (tids[i] & 63);
                        i += 1;
                    }
                    h ^= word;
                    h = h.wrapping_mul(FNV_MUL);
                }
                h
            }
            Repr::Runs(runs) => {
                let n_words = self.universe.div_ceil(WORD_BITS);
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                let mut next = 0usize;
                scan_run_words(runs, |wi, mask| {
                    // Zero words between runs still fold (XOR with 0).
                    while next < wi {
                        h = h.wrapping_mul(FNV_MUL);
                        next += 1;
                    }
                    h ^= mask;
                    h = h.wrapping_mul(FNV_MUL);
                    next = wi + 1;
                    true
                });
                while next < n_words {
                    h = h.wrapping_mul(FNV_MUL);
                    next += 1;
                }
                h
            }
        }
    }

    // ------------------------------------------------------------- codec

    /// Encodes the set for the binary snapshot format: the universe, a
    /// representation tag (`0` sparse, `1` dense, `2` runs), then the
    /// current representation's payload verbatim. The repr is serialized
    /// as-is — not canonicalised — so a decoded set occupies exactly the
    /// [`Tidset::heap_bytes`] it was metered at when saved, and cache
    /// budget accounting agrees across a save/load boundary.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.universe as u64);
        match &self.repr {
            Repr::Sparse(tids) => {
                w.put_u8(0);
                w.put_u64(tids.len() as u64);
                for &t in tids {
                    w.put_u32(t);
                }
            }
            Repr::Dense(bm) => {
                w.put_u8(1);
                let words = bm.words();
                w.put_u64(words.len() as u64);
                for &word in words {
                    w.put_u64(word);
                }
            }
            Repr::Runs(runs) => {
                w.put_u8(2);
                w.put_u64(runs.len() as u64);
                for &(s, e) in runs {
                    w.put_u32(s);
                    w.put_u32(e);
                }
            }
        }
    }

    /// Decodes a set written by [`Tidset::encode`], preserving the stored
    /// representation. Every format invariant is re-validated — sparse
    /// lists must be strictly ascending and in-universe, dense word counts
    /// and tail bits must match the universe, run lists must be canonical
    /// — so a bit-flipped payload that still passes the section CRC (or a
    /// hostile file) yields a [`CodecError`], never an invalid set.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Tidset, CodecError> {
        let universe = r.get_len()?;
        if universe > u32::MAX as usize {
            return Err(CodecError::Malformed(format!(
                "tidset universe {universe} exceeds the u32 tid space"
            )));
        }
        let tag = r.get_u8()?;
        let repr = match tag {
            0 => {
                let n = r.get_len()?;
                let mut tids = Vec::with_capacity(n.min(r.remaining() / 4));
                for _ in 0..n {
                    tids.push(r.get_u32()?);
                }
                let sorted = tids.windows(2).all(|w| w[0] < w[1]);
                if !sorted || tids.last().is_some_and(|&t| t as usize >= universe) {
                    return Err(CodecError::Malformed(
                        "sparse tidset not strictly ascending within universe".into(),
                    ));
                }
                Repr::Sparse(tids)
            }
            1 => {
                let n = r.get_len()?;
                let mut words = Vec::with_capacity(n.min(r.remaining() / 8));
                for _ in 0..n {
                    words.push(r.get_u64()?);
                }
                let bm = Bitmap::from_words(universe, words).ok_or_else(|| {
                    CodecError::Malformed(
                        "dense tidset word count or tail bits inconsistent with universe".into(),
                    )
                })?;
                Repr::Dense(bm)
            }
            2 => {
                let n = r.get_len()?;
                let mut runs: Vec<(u32, u32)> = Vec::with_capacity(n.min(r.remaining() / 8));
                for _ in 0..n {
                    let s = r.get_u32()?;
                    let e = r.get_u32()?;
                    let canonical = s < e
                        && e as usize <= universe
                        && runs.last().is_none_or(|&(_, prev_e)| prev_e < s);
                    if !canonical {
                        return Err(CodecError::Malformed(
                            "run list not canonical (sorted, non-empty, non-adjacent, in-universe)"
                                .into(),
                        ));
                    }
                    runs.push((s, e));
                }
                Repr::Runs(runs)
            }
            other => {
                return Err(CodecError::Malformed(format!(
                    "unknown tidset repr tag {other}"
                )))
            }
        };
        Ok(Tidset { universe, repr })
    }
}

impl PartialEq for Tidset {
    /// Set equality — representation-independent.
    fn eq(&self, other: &Self) -> bool {
        if self.universe != other.universe {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => a == b,
            (Repr::Dense(a), Repr::Dense(b)) => a == b,
            // Canonical run lists are unique per set.
            (Repr::Runs(a), Repr::Runs(b)) => a == b,
            _ => self.len() == other.len() && self.iter().eq(other.iter()),
        }
    }
}

impl Eq for Tidset {}

impl fmt::Debug for Tidset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over `self \ other` (see [`Tidset::iter_difference`]).
pub enum DifferenceIter<'a> {
    /// Dense×dense: the bitmap kernel's masked word scan.
    Masked(crate::bitmap::MaskedBitIter<'a>),
    /// Any other combination: walk `self`, probe `other` per tid.
    Probe {
        /// Tids of the left operand, ascending.
        it: TidIter<'a>,
        /// The subtrahend probed per tid.
        other: &'a Tidset,
    },
}

impl Iterator for DifferenceIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            DifferenceIter::Masked(it) => it.next(),
            DifferenceIter::Probe { it, other } => it.by_ref().find(|&t| !other.contains(t)),
        }
    }
}

/// Iterator over the tids of a [`Tidset`], ascending.
pub enum TidIter<'a> {
    /// Sparse backing: a slice walk.
    Sparse(std::slice::Iter<'a, u32>),
    /// Dense backing: the bitmap's bit scanner.
    Dense(BitIter<'a>),
    /// Run backing: each `[start, end)` interval expanded in order.
    Runs {
        /// Remaining (unexpanded) runs.
        runs: std::slice::Iter<'a, (u32, u32)>,
        /// The run currently being expanded.
        cur: std::ops::Range<u32>,
    },
}

impl Iterator for TidIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            TidIter::Sparse(it) => it.next().map(|&t| t as usize),
            TidIter::Dense(it) => it.next(),
            TidIter::Runs { runs, cur } => loop {
                if let Some(t) = cur.next() {
                    return Some(t as usize);
                }
                match runs.next() {
                    Some(&(s, e)) => *cur = s..e,
                    None => return None,
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Tests that flip the global mode or assert concrete representations
    /// serialize through this lock and restore [`TidsetMode::Adaptive`].
    static MODE_LOCK: Mutex<()> = Mutex::new(());

    struct ModeGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

    impl ModeGuard {
        fn adaptive() -> ModeGuard {
            let guard = MODE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            set_tidset_mode(TidsetMode::Adaptive);
            ModeGuard(guard)
        }
    }

    impl Drop for ModeGuard {
        fn drop(&mut self) {
            set_tidset_mode(TidsetMode::Adaptive);
        }
    }

    fn ts(universe: usize, tids: &[usize]) -> Tidset {
        Tidset::from_indices(universe, tids.iter().copied())
    }

    #[test]
    fn codec_roundtrip_preserves_repr_and_values() {
        let _guard = ModeGuard::adaptive();
        let universe = 6400;
        let cases = [
            Tidset::new(universe),                                    // empty (sparse)
            Tidset::from_indices(universe, (0..20).map(|i| 3 * i)),   // sparse
            Tidset::from_indices(universe, (0..universe).step_by(2)), // dense
            Tidset::from_indices(universe, 0..400),                   // runs
            Tidset::full(universe),                                   // single run
            Tidset::from_indices(universe, [universe - 1]),           // boundary tid
            Tidset::new(0),                                           // empty universe
        ];
        for t in &cases {
            let mut w = ByteWriter::new();
            t.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = Tidset::decode(&mut r).expect("roundtrip decode");
            r.expect_end()
                .expect("decode consumes exactly the encoding");
            assert_eq!(&back, t);
            assert_eq!(back.universe(), t.universe());
            assert_eq!(back.is_sparse(), t.is_sparse(), "repr preserved");
            assert_eq!(back.is_runs(), t.is_runs(), "repr preserved");
            assert_eq!(back.heap_bytes(), t.heap_bytes(), "metering agrees");
            assert_eq!(back.fingerprint(), t.fingerprint());
        }
        // Forced reprs survive a roundtrip even when adaptive would flip.
        for forced in [
            cases[1].to_dense(),
            cases[2].to_sparse(),
            cases[1].to_runs(),
        ] {
            let mut w = ByteWriter::new();
            forced.encode(&mut w);
            let bytes = w.into_bytes();
            let back = Tidset::decode(&mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(back.heap_bytes(), forced.heap_bytes());
            assert_eq!(back, forced);
        }
    }

    #[test]
    fn codec_rejects_invalid_payloads() {
        let _guard = ModeGuard::adaptive();
        let encode = |t: &Tidset| {
            let mut w = ByteWriter::new();
            t.encode(&mut w);
            w.into_bytes()
        };
        // Truncation at every prefix length errors, never panics.
        let bytes = encode(&Tidset::from_indices(640, (0..30).map(|i| 2 * i)));
        for cut in 0..bytes.len() {
            assert!(
                Tidset::decode(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "prefix {cut} must be rejected"
            );
        }
        // Unknown repr tag.
        let mut bad_tag = encode(&Tidset::from_indices(640, [1, 5]));
        bad_tag[8] = 9;
        assert!(Tidset::decode(&mut ByteReader::new(&bad_tag)).is_err());
        // Unsorted sparse list: swap the two stored tids.
        let mut unsorted = encode(&Tidset::from_indices(640, [1, 5]));
        unsorted[17] = 5;
        unsorted[21] = 1;
        assert!(Tidset::decode(&mut ByteReader::new(&unsorted)).is_err());
        // Out-of-universe sparse tid.
        let mut oob = encode(&Tidset::from_indices(640, [1, 5]));
        oob[21] = 0xFF;
        oob[22] = 0xFF;
        assert!(Tidset::decode(&mut ByteReader::new(&oob)).is_err());
        // Dense tail bits beyond the universe set.
        let mut tail = encode(&Tidset::from_indices(70, 0..70).to_dense());
        *tail.last_mut().unwrap() |= 0x80;
        assert!(Tidset::decode(&mut ByteReader::new(&tail)).is_err());
        // Adjacent (non-canonical) runs.
        let mut w = ByteWriter::new();
        w.put_u64(640);
        w.put_u8(2);
        w.put_u64(2);
        for (s, e) in [(0u32, 5u32), (5, 9)] {
            w.put_u32(s);
            w.put_u32(e);
        }
        let adjacent = w.into_bytes();
        assert!(Tidset::decode(&mut ByteReader::new(&adjacent)).is_err());
    }

    #[test]
    fn representation_follows_threshold() {
        let _guard = ModeGuard::adaptive();
        let universe = 6400; // 100 words => sparse_limit = 25
        let limit = sparse_limit(universe);
        assert_eq!(limit, 25);
        // Stride-2 tids: all runs are singletons, so the run variant never
        // wins and the sparse/dense flip sits exactly at the limit.
        for (card, sparse) in [(limit - 1, true), (limit, true), (limit + 1, false)] {
            let t = Tidset::from_indices(universe, (0..card).map(|i| 2 * i));
            assert_eq!(t.is_sparse(), sparse, "card {card}");
            assert!(!t.is_runs(), "card {card}");
            assert_eq!(t.len(), card);
        }
    }

    #[test]
    fn runs_follow_breakeven() {
        let _guard = ModeGuard::adaptive();
        let universe = 6400; // sparse_limit = 25
                             // Small clustered set: 1 run ≤ card/4 → runs beat sparse.
        assert!(Tidset::from_indices(universe, 0..24).is_runs());
        // Small scattered set: card/4 singleton-run cap missed → sparse.
        assert!(Tidset::from_indices(universe, (0..24).map(|i| 3 * i)).is_sparse());
        // Large clustered set: 4 runs ≤ limit → runs beat dense.
        let blocks = (0..400).map(|i| (i / 100) * 1000 + (i % 100));
        let big = Tidset::from_indices(universe, blocks);
        assert!(big.is_runs());
        assert_eq!(big.heap_bytes(), 4 * 8);
        // Large scattered set: 3200 runs > limit → dense.
        let wide = Tidset::from_indices(universe, (0..universe).step_by(2));
        assert!(!wide.is_runs() && !wide.is_sparse());
        // The full set is a single run.
        assert!(Tidset::full(universe).is_runs());
    }

    #[test]
    fn forced_modes_override_threshold() {
        let _guard = ModeGuard::adaptive();
        set_tidset_mode(TidsetMode::ForceDense);
        assert!(!Tidset::from_indices(640, 0..3).is_sparse());
        set_tidset_mode(TidsetMode::ForceSparse);
        assert!(Tidset::from_indices(640, 0..200).is_sparse());
        set_tidset_mode(TidsetMode::ForceRuns);
        assert!(Tidset::from_indices(640, (0..200).step_by(3)).is_runs());
    }

    #[test]
    fn kernel_results_rebalance_representation() {
        let _guard = ModeGuard::adaptive();
        let universe = 6400;
        let limit = sparse_limit(universe);
        // Two dense scattered sets with a tiny intersection: the result
        // demotes to sparse.
        let a = Tidset::from_indices(universe, (0..universe).step_by(2));
        let b = Tidset::from_indices(universe, (0..universe).filter(|i| i % 640 == 0));
        assert!(!a.is_sparse() && !a.is_runs());
        let i = a.and(&b);
        assert!(i.is_sparse(), "tiny scattered intersection demotes");
        assert_eq!(i.len(), 10);
        // A sparse scattered set crossing the threshold under union
        // promotes to dense.
        let mut s = Tidset::from_indices(universe, (0..limit).map(|i| 2 * i));
        assert!(s.is_sparse());
        s.union_with(&Tidset::from_indices(
            universe,
            (limit..2 * limit).map(|i| 2 * i),
        ));
        assert!(
            !s.is_sparse() && !s.is_runs(),
            "union past threshold promotes"
        );
        assert_eq!(s.len(), 2 * limit);
        // Adjacent clustered unions stay a single run.
        let mut r = Tidset::from_indices(universe, 0..200);
        assert!(r.is_runs());
        r.union_with(&Tidset::from_indices(universe, 200..400));
        assert!(r.is_runs());
        assert_eq!(r.heap_bytes(), 8, "adjacent runs coalesce");
        assert_eq!(r.len(), 400);
    }

    #[test]
    fn kernels_match_bitmap_reference_in_all_repr_combos() {
        let universe = 200;
        let a: Vec<usize> = (0..universe).filter(|i| i % 3 == 0).collect();
        let b: Vec<usize> = (0..universe)
            .filter(|&i| i % 4 == 1 || i % 7 == 0 || (40..80).contains(&i))
            .collect();
        let c: Vec<usize> = (0..universe)
            .filter(|&i| i % 5 == 2 || (100..130).contains(&i))
            .collect();
        let (ba, bb, bc) = (
            Bitmap::from_indices(universe, a.iter().copied()),
            Bitmap::from_indices(universe, b.iter().copied()),
            Bitmap::from_indices(universe, c.iter().copied()),
        );
        let variants = |v: &[usize]| {
            let t = ts(universe, v);
            [t.to_sparse(), t.to_dense(), t.to_runs()]
        };
        let weights: Vec<f64> = (0..universe)
            .map(|i| (i % 13) as f64 * 0.375 + 0.25)
            .collect();
        for ta in variants(&a) {
            for tb in variants(&b) {
                assert_eq!(ta.intersection_len(&tb), ba.intersection_len(&bb));
                assert_eq!(ta.union_len(&tb), ba.union_len(&bb));
                assert_eq!(ta.difference_len(&tb), ba.difference_len(&bb));
                assert_eq!(ta.and(&tb).to_vec(), ba.and(&bb).to_vec());
                assert_eq!(ta.difference(&tb).to_vec(), ba.and_not(&bb).to_vec());
                assert_eq!(ta.is_subset(&tb), ba.is_subset(&bb));
                assert_eq!(ta.is_disjoint(&tb), ba.is_disjoint(&bb));
                assert_eq!(ta.jaccard(&tb), ba.jaccard(&bb));
                assert_eq!(
                    ta.iter_difference(&tb).collect::<Vec<_>>(),
                    ba.and_not(&bb).to_vec()
                );
                for tc in variants(&c) {
                    assert_eq!(ta.and_and_not_len(&tb, &tc), ba.and_and_not_len(&bb, &bc));
                    assert_eq!(ta.and_not_not_len(&tb, &tc), ba.and_not_not_len(&bb, &bc));
                    assert_eq!(ta.and_is_subset(&tb, &tc), ba.and_is_subset(&bb, &bc));
                }
                // fp kernels must be BIT-identical across representations.
                assert_eq!(
                    ta.weighted_len(&weights).to_bits(),
                    ba.weighted_len(&weights).to_bits(),
                    "weighted_len must be bit-identical"
                );
                assert_eq!(
                    ta.difference_weight(&tb, &weights).to_bits(),
                    ta.to_dense()
                        .difference_weight(&tb.to_dense(), &weights)
                        .to_bits(),
                    "difference_weight must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn run_interval_algebra_edge_cases() {
        // Adjacency, containment, word-boundary straddles, and empty
        // operands — checked against the forced-sparse reference.
        let universe = 300;
        let blocks = |rs: &[(usize, usize)]| -> Tidset {
            let mut v = Vec::new();
            for &(s, e) in rs {
                v.extend(s..e);
            }
            Tidset::from_indices(universe, v).to_runs()
        };
        type RunSpec = [(usize, usize)];
        let cases: &[(&RunSpec, &RunSpec)] = &[
            (&[(0, 64)], &[(0, 64)]),
            (&[(0, 64)], &[(64, 128)]),
            (&[(0, 100)], &[(50, 60), (61, 70)]),
            (&[(0, 5), (6, 10), (20, 90)], &[(4, 7), (10, 20), (89, 90)]),
            (&[(63, 65), (127, 129)], &[(0, 300)]),
            (&[], &[(5, 6)]),
            (&[(0, 1), (2, 3), (4, 5)], &[(1, 2), (3, 4)]),
        ];
        for &(ra, rb) in cases {
            for (ta, tb) in [(blocks(ra), blocks(rb)), (blocks(rb), blocks(ra))] {
                let (sa, sb) = (ta.to_sparse(), tb.to_sparse());
                assert_eq!(ta.and(&tb).to_vec(), sa.and(&sb).to_vec());
                assert_eq!(ta.difference(&tb).to_vec(), sa.difference(&sb).to_vec());
                assert_eq!(ta.intersection_len(&tb), sa.intersection_len(&sb));
                assert_eq!(ta.difference_len(&tb), sa.difference_len(&sb));
                assert_eq!(ta.is_subset(&tb), sa.is_subset(&sb));
                assert_eq!(ta.is_disjoint(&tb), sa.is_disjoint(&sb));
                assert_eq!(ta.fingerprint(), sa.fingerprint());
                let mut u = ta.clone();
                u.union_with(&tb);
                let mut su = sa.clone();
                su.union_with(&sb);
                assert_eq!(u.to_vec(), su.to_vec());
            }
        }
    }

    #[test]
    fn fingerprint_is_representation_independent() {
        // Pinned contract: sparse, dense, and run copies of one set hash
        // identically, and all equal the dense Bitmap fingerprint, so
        // perfsuite identity checks and engine cache keys are agnostic to
        // the representation mix.
        for universe in [1, 63, 64, 65, 200, 1000] {
            for stride in [1usize, 2, 7, 64, 97] {
                let tids: Vec<usize> = (0..universe).step_by(stride).collect();
                let t = ts(universe, &tids);
                let bm = Bitmap::from_indices(universe, tids.iter().copied());
                assert_eq!(
                    t.to_sparse().fingerprint(),
                    t.to_dense().fingerprint(),
                    "universe {universe} stride {stride}"
                );
                assert_eq!(
                    t.to_runs().fingerprint(),
                    t.to_dense().fingerprint(),
                    "universe {universe} stride {stride}"
                );
                assert_eq!(t.to_sparse().fingerprint(), bm.fingerprint());
            }
            let empty = Tidset::new(universe);
            assert_eq!(
                empty.to_sparse().fingerprint(),
                Bitmap::new(universe).fingerprint()
            );
            assert_eq!(
                empty.to_runs().fingerprint(),
                Bitmap::new(universe).fingerprint()
            );
        }
    }

    #[test]
    fn equality_is_representation_independent() {
        let t = ts(300, &[0, 63, 64, 65, 199, 299]);
        assert_eq!(t.to_sparse(), t.to_dense());
        assert_eq!(t.to_dense(), t.to_sparse());
        assert_eq!(t.to_runs(), t.to_sparse());
        assert_eq!(t.to_dense(), t.to_runs());
        assert_ne!(t.to_sparse(), ts(300, &[0, 63]).to_dense());
        assert_ne!(t.to_runs(), ts(300, &[0, 63]).to_runs());
        assert_ne!(ts(300, &[1]), ts(301, &[1]), "universe is part of identity");
    }

    #[test]
    fn full_and_empty() {
        let _guard = ModeGuard::adaptive();
        for universe in [0, 1, 70, 640] {
            let full = Tidset::full(universe);
            assert_eq!(full.len(), universe);
            assert_eq!(full.to_vec(), (0..universe).collect::<Vec<_>>());
            let empty = Tidset::new(universe);
            assert!(empty.is_empty());
            assert!(empty.is_subset(&full));
            assert!(empty.is_disjoint(&full));
        }
    }

    #[test]
    fn in_place_ops_match_allocating() {
        let a = ts(200, &[0, 5, 6, 7, 8, 64, 65, 128, 199]);
        let b = ts(200, &[5, 6, 64, 100, 101, 102, 199]);
        for (ta, tb) in [
            (a.to_sparse(), b.to_dense()),
            (a.to_dense(), b.to_sparse()),
            (a.to_sparse(), b.to_sparse()),
            (a.to_dense(), b.to_dense()),
            (a.to_runs(), b.to_sparse()),
            (a.to_runs(), b.to_dense()),
            (a.to_runs(), b.to_runs()),
            (a.to_sparse(), b.to_runs()),
            (a.to_dense(), b.to_runs()),
        ] {
            let mut x = ta.clone();
            x.intersect_with(&tb);
            assert_eq!(x, ta.and(&tb));
            let mut y = ta.clone();
            y.subtract(&tb);
            assert_eq!(y, ta.difference(&tb));
            let mut z = ta.clone();
            z.union_with(&tb);
            assert_eq!(z.len(), ta.union_len(&tb));
            let mut out = Tidset::new(200);
            ta.and_into(&tb, &mut out);
            assert_eq!(out, ta.and(&tb));
        }
    }

    #[test]
    fn heap_bytes_reflect_representation() {
        let t = ts(6400, &[1, 2, 3]);
        assert_eq!(t.to_sparse().heap_bytes(), 12);
        assert_eq!(t.to_dense().heap_bytes(), dense_bytes(6400));
        assert_eq!(t.to_runs().heap_bytes(), 8, "one run = one (start, end)");
        assert_eq!(dense_bytes(6400), 100 * 8);
    }
}
