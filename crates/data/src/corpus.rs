//! The experiment corpus: synthetic analogues of the paper's 14 datasets.
//!
//! The paper (Table 1) evaluates on datasets from the LUCS/KDD, UCI and
//! MULAN repositories plus the Mammals atlas and the 2011 Finnish election
//! engine — none of which we can redistribute. Each [`PaperDataset`] pairs
//! the *paper-reported* statistics (kept verbatim for comparison in
//! `EXPERIMENTS.md`) with a [`SyntheticSpec`] matched on `|D|`, `|I_L|`,
//! `|I_R|` and the two densities, and with planted cross-view structure
//! whose strength is tuned so the corpus spans the paper's compressibility
//! range (House ≈ 49% … Nursery ≈ 98%).
//!
//! Four datasets used in the paper's qualitative figures get fully named
//! vocabularies (House votes, Mammals species, CAL500 music semantics,
//! Finnish election profiles) so example rules remain readable.

use crate::items::Vocabulary;
use crate::synthetic::{generate_with_vocab, StructureSpec, SyntheticDataset, SyntheticSpec};

/// One of the 14 datasets of the paper's evaluation (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are dataset names; see `PaperDataset::name`
pub enum PaperDataset {
    Abalone,
    Adult,
    Cal500,
    Car,
    ChessKrVk,
    Crime,
    Elections,
    Emotions,
    House,
    Mammals,
    Nursery,
    Tictactoe,
    Wine,
    Yeast,
}

/// Statistics reported by the paper, for side-by-side comparison.
#[derive(Clone, Copy, Debug)]
pub struct PaperStats {
    /// `|D|` (Table 1).
    pub n: usize,
    /// `|I_L|` (Table 1).
    pub n_left: usize,
    /// `|I_R|` (Table 1).
    pub n_right: usize,
    /// Density of the left view (Table 1).
    pub d_left: f64,
    /// Density of the right view (Table 1).
    pub d_right: f64,
    /// Uncompressed size `L(D, ∅)` in bits (Table 1).
    pub l_empty: f64,
    /// `minsup` used for SELECT/GREEDY in Table 2 (1 for the small datasets).
    pub minsup: usize,
    /// Number of rules found by TRANSLATOR-SELECT(1) (Table 2).
    pub select1_rules: usize,
    /// Compression ratio `L%` of TRANSLATOR-SELECT(1) (Table 2).
    pub select1_l_pct: f64,
}

impl PaperDataset {
    /// All 14 datasets, in Table 1 order.
    pub const ALL: [PaperDataset; 14] = [
        PaperDataset::Abalone,
        PaperDataset::Adult,
        PaperDataset::Cal500,
        PaperDataset::Car,
        PaperDataset::ChessKrVk,
        PaperDataset::Crime,
        PaperDataset::Elections,
        PaperDataset::Emotions,
        PaperDataset::House,
        PaperDataset::Mammals,
        PaperDataset::Nursery,
        PaperDataset::Tictactoe,
        PaperDataset::Wine,
        PaperDataset::Yeast,
    ];

    /// The 7 moderate-size datasets of Table 2 (top), run with `minsup = 1`
    /// and tractable for `TRANSLATOR-EXACT`.
    pub const SMALL: [PaperDataset; 7] = [
        PaperDataset::Abalone,
        PaperDataset::Car,
        PaperDataset::ChessKrVk,
        PaperDataset::Nursery,
        PaperDataset::Tictactoe,
        PaperDataset::Wine,
        PaperDataset::Yeast,
    ];

    /// The 7 larger datasets of Table 2 (bottom), run with tuned `minsup`.
    pub const LARGE: [PaperDataset; 7] = [
        PaperDataset::Adult,
        PaperDataset::Cal500,
        PaperDataset::Crime,
        PaperDataset::Elections,
        PaperDataset::Emotions,
        PaperDataset::House,
        PaperDataset::Mammals,
    ];

    /// Canonical lowercase name as used throughout the paper.
    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::Abalone => "Abalone",
            PaperDataset::Adult => "Adult",
            PaperDataset::Cal500 => "CAL500",
            PaperDataset::Car => "Car",
            PaperDataset::ChessKrVk => "ChessKRvK",
            PaperDataset::Crime => "Crime",
            PaperDataset::Elections => "Elections",
            PaperDataset::Emotions => "Emotions",
            PaperDataset::House => "House",
            PaperDataset::Mammals => "Mammals",
            PaperDataset::Nursery => "Nursery",
            PaperDataset::Tictactoe => "Tictactoe",
            PaperDataset::Wine => "Wine",
            PaperDataset::Yeast => "Yeast",
        }
    }

    /// Looks a dataset up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<PaperDataset> {
        let lower = name.to_ascii_lowercase();
        PaperDataset::ALL
            .into_iter()
            .find(|d| d.name().to_ascii_lowercase() == lower)
    }

    /// The statistics the paper reports for this dataset (Tables 1 and 2).
    pub fn paper(self) -> PaperStats {
        match self {
            PaperDataset::Abalone => PaperStats {
                n: 4177,
                n_left: 27,
                n_right: 31,
                d_left: 0.185,
                d_right: 0.129,
                l_empty: 170_748.0,
                minsup: 1,
                select1_rules: 86,
                select1_l_pct: 54.86,
            },
            PaperDataset::Adult => PaperStats {
                n: 48_842,
                n_left: 44,
                n_right: 53,
                d_left: 0.179,
                d_right: 0.132,
                l_empty: 2_845_491.0,
                minsup: 4885,
                select1_rules: 8,
                select1_l_pct: 54.29,
            },
            PaperDataset::Cal500 => PaperStats {
                n: 502,
                n_left: 78,
                n_right: 97,
                d_left: 0.241,
                d_right: 0.074,
                l_empty: 76_862.0,
                minsup: 20,
                select1_rules: 59,
                select1_l_pct: 86.45,
            },
            PaperDataset::Car => PaperStats {
                n: 1728,
                n_left: 15,
                n_right: 10,
                d_left: 0.267,
                d_right: 0.300,
                l_empty: 42_708.0,
                minsup: 1,
                select1_rules: 9,
                select1_l_pct: 94.67,
            },
            PaperDataset::ChessKrVk => PaperStats {
                n: 28_056,
                n_left: 24,
                n_right: 34,
                d_left: 0.167,
                d_right: 0.088,
                l_empty: 889_555.0,
                minsup: 1,
                select1_rules: 311,
                select1_l_pct: 94.94,
            },
            PaperDataset::Crime => PaperStats {
                n: 2215,
                n_left: 244,
                n_right: 294,
                d_left: 0.201,
                d_right: 0.194,
                l_empty: 1_865_057.0,
                minsup: 200,
                select1_rules: 144,
                select1_l_pct: 87.45,
            },
            PaperDataset::Elections => PaperStats {
                n: 1846,
                n_left: 82,
                n_right: 867,
                d_left: 0.061,
                d_right: 0.034,
                l_empty: 451_823.0,
                minsup: 47,
                select1_rules: 80,
                select1_l_pct: 93.28,
            },
            PaperDataset::Emotions => PaperStats {
                n: 593,
                n_left: 430,
                n_right: 12,
                d_left: 0.167,
                d_right: 0.501,
                l_empty: 375_288.0,
                minsup: 40,
                select1_rules: 22,
                select1_l_pct: 97.35,
            },
            PaperDataset::House => PaperStats {
                n: 435,
                n_left: 26,
                n_right: 24,
                d_left: 0.347,
                d_right: 0.334,
                l_empty: 31_625.0,
                minsup: 8,
                select1_rules: 37,
                select1_l_pct: 49.26,
            },
            PaperDataset::Mammals => PaperStats {
                n: 2575,
                n_left: 95,
                n_right: 94,
                d_left: 0.172,
                d_right: 0.169,
                l_empty: 468_742.0,
                minsup: 773,
                select1_rules: 55,
                select1_l_pct: 68.23,
            },
            PaperDataset::Nursery => PaperStats {
                n: 12_960,
                n_left: 19,
                n_right: 13,
                d_left: 0.263,
                d_right: 0.308,
                l_empty: 453_443.0,
                minsup: 1,
                select1_rules: 27,
                select1_l_pct: 98.36,
            },
            PaperDataset::Tictactoe => PaperStats {
                n: 958,
                n_left: 15,
                n_right: 14,
                d_left: 0.333,
                d_right: 0.357,
                l_empty: 36_396.0,
                minsup: 1,
                select1_rules: 64,
                select1_l_pct: 85.20,
            },
            PaperDataset::Wine => PaperStats {
                n: 178,
                n_left: 35,
                n_right: 33,
                d_left: 0.200,
                d_right: 0.212,
                l_empty: 11_608.0,
                minsup: 1,
                select1_rules: 27,
                select1_l_pct: 69.15,
            },
            PaperDataset::Yeast => PaperStats {
                n: 1484,
                n_left: 24,
                n_right: 26,
                d_left: 0.167,
                d_right: 0.192,
                l_empty: 52_697.0,
                minsup: 1,
                select1_rules: 32,
                select1_l_pct: 82.73,
            },
        }
    }

    /// Planted-structure strength, tuned per dataset so compressibility
    /// ranks like the paper (strong → House/Adult/Abalone, weak → Nursery).
    fn structure(self) -> StructureSpec {
        let s = |n, occ, conf, bidir, ls, rs| StructureSpec {
            n_concepts: n,
            occurrence: occ,
            confidence: conf,
            item_fire: 0.95,
            bidir_fraction: bidir,
            left_size: ls,
            right_size: rs,
            burst_len: 1,
        };
        match self {
            PaperDataset::House => s(10, 0.26, 0.88, 0.5, (2, 4), (2, 3)),
            PaperDataset::Abalone => s(6, 0.22, 0.90, 0.5, (2, 4), (2, 3)),
            PaperDataset::Adult => s(10, 0.22, 0.90, 0.4, (2, 4), (2, 3)),
            PaperDataset::Wine => s(7, 0.22, 0.85, 0.5, (2, 4), (2, 3)),
            // Mammals' paper minsup is 30% of |D| — concepts must occur
            // above that frequency to be minable at all.
            PaperDataset::Mammals => s(12, 0.40, 0.85, 0.5, (2, 4), (2, 3)),
            PaperDataset::Yeast => s(5, 0.15, 0.80, 0.4, (2, 3), (2, 3)),
            PaperDataset::Tictactoe => s(5, 0.14, 0.75, 0.4, (2, 3), (2, 3)),
            PaperDataset::Cal500 => s(12, 0.16, 0.76, 0.4, (2, 4), (2, 3)),
            PaperDataset::Crime => s(30, 0.18, 0.78, 0.4, (2, 4), (2, 3)),
            PaperDataset::Elections => s(18, 0.10, 0.72, 0.3, (2, 3), (2, 3)),
            PaperDataset::Car => s(3, 0.10, 0.60, 0.3, (2, 3), (1, 2)),
            PaperDataset::ChessKrVk => s(5, 0.06, 0.60, 0.3, (2, 3), (2, 3)),
            PaperDataset::Emotions => s(5, 0.18, 0.80, 0.3, (2, 3), (1, 2)),
            PaperDataset::Nursery => s(2, 0.05, 0.50, 0.3, (2, 3), (1, 2)),
        }
    }

    /// The synthetic spec for this dataset (paper-scale).
    pub fn spec(self) -> SyntheticSpec {
        let p = self.paper();
        SyntheticSpec {
            name: self.name().to_string(),
            n_transactions: p.n,
            n_left: p.n_left,
            n_right: p.n_right,
            density_left: p.d_left,
            density_right: p.d_right,
            structure: self.structure(),
            // Stable per-dataset seed: experiments are exactly reproducible.
            seed: CORPUS_SEED_BASE ^ (self as u64),
        }
    }

    /// The (named where applicable) vocabulary for this dataset.
    pub fn vocabulary(self) -> Vocabulary {
        let p = self.paper();
        match self {
            PaperDataset::House => house_vocabulary(),
            PaperDataset::Mammals => mammals_vocabulary(),
            PaperDataset::Cal500 => cal500_vocabulary(),
            PaperDataset::Elections => elections_vocabulary(),
            PaperDataset::Emotions => emotions_vocabulary(),
            _ => Vocabulary::unnamed(p.n_left, p.n_right),
        }
    }

    /// Generates the dataset at full paper scale (deterministic).
    pub fn generate(self) -> SyntheticDataset {
        self.generate_scaled(usize::MAX)
    }

    /// Generates the dataset with at most `max_transactions` rows.
    pub fn generate_scaled(self, max_transactions: usize) -> SyntheticDataset {
        let spec = self.spec().scaled_to(max_transactions);
        generate_with_vocab(&spec, self.vocabulary())
            // lint: allow(panic_hygiene) — spec() builds from hard-coded paper parameters that always validate
            .expect("corpus specs are valid by construction")
    }

    /// The minsup to use for a run over `n` transactions — the paper's
    /// Table 2 value, scaled proportionally when the dataset is subsampled.
    pub fn minsup_for(self, n: usize) -> usize {
        let p = self.paper();
        if p.minsup <= 1 {
            return 1;
        }
        let scaled = (p.minsup as f64 * n as f64 / p.n as f64).round() as usize;
        scaled.max(1)
    }
}

/// Seed base for the corpus (arbitrary constant; never change it, or every
/// recorded experiment shifts).
const CORPUS_SEED_BASE: u64 = 0x2f1e_77aa_9b3c_5d01;

/// The 16 vote topics of the 1984 congressional voting records data.
const HOUSE_VOTES: [&str; 16] = [
    "handicapped-infants",
    "water-project-cost-sharing",
    "budget-resolution",
    "physician-fee-freeze",
    "el-salvador-aid",
    "religious-groups-in-schools",
    "anti-satellite-test-ban",
    "aid-to-nicaraguan-contras",
    "mx-missile",
    "immigration",
    "synfuels-corporation-cutback",
    "education-spending",
    "superfund-right-to-sue",
    "crime",
    "duty-free-exports",
    "export-administration-south-africa",
];

/// House: left = party + first 8 votes (26 items), right = last 8 votes (24).
pub fn house_vocabulary() -> Vocabulary {
    let mut left: Vec<String> = vec!["party=democrat".into(), "party=republican".into()];
    for vote in &HOUSE_VOTES[..8] {
        for disp in ["y", "n", "?"] {
            left.push(format!("{vote}={disp}"));
        }
    }
    let mut right = Vec::new();
    for vote in &HOUSE_VOTES[8..] {
        for disp in ["y", "n", "?"] {
            right.push(format!("{vote}={disp}"));
        }
    }
    Vocabulary::new(left, right)
}

const MAMMAL_SPECIES: [&str; 68] = [
    "European_Mole",
    "Red_Fox",
    "Red_Squirrel",
    "Eurasian_Lynx",
    "Brown_Bear",
    "Grey_Wolf",
    "Wild_Boar",
    "Red_Deer",
    "Roe_Deer",
    "Moose",
    "European_Badger",
    "Pine_Marten",
    "Beech_Marten",
    "Least_Weasel",
    "Stoat",
    "European_Polecat",
    "Eurasian_Otter",
    "Wildcat",
    "Mountain_Hare",
    "European_Rabbit",
    "Alpine_Marmot",
    "Bank_Vole",
    "Field_Vole",
    "Common_Vole",
    "Water_Vole",
    "Muskrat",
    "Brown_Rat",
    "Black_Rat",
    "House_Mouse",
    "Wood_Mouse",
    "Yellow_Necked_Mouse",
    "Striped_Field_Mouse",
    "Common_Shrew",
    "Pygmy_Shrew",
    "Water_Shrew",
    "White_Toothed_Shrew",
    "European_Hedgehog",
    "Common_Pipistrelle",
    "Noctule",
    "Serotine",
    "Daubentons_Bat",
    "Natterers_Bat",
    "Brown_Long_Eared_Bat",
    "Greater_Horseshoe_Bat",
    "Barbastelle",
    "European_Bison",
    "Chamois",
    "Alpine_Ibex",
    "Mouflon",
    "Fallow_Deer",
    "Sika_Deer",
    "Reindeer",
    "Arctic_Fox",
    "Raccoon_Dog",
    "Golden_Jackal",
    "Wolverine",
    "European_Mink",
    "American_Mink",
    "Garden_Dormouse",
    "Edible_Dormouse",
    "Hazel_Dormouse",
    "Common_Hamster",
    "Northern_Birch_Mouse",
    "Lesser_Mole_Rat",
    "Crested_Porcupine",
    "Coypu",
    "Harvest_Mouse",
    "European_Hare",
];

/// Mammals: 95 + 94 species presence indicators (real names first, padded
/// with systematic placeholders to match the paper's dimensions).
pub fn mammals_vocabulary() -> Vocabulary {
    let mut names: Vec<String> = MAMMAL_SPECIES.iter().map(|s| s.to_string()).collect();
    let mut i = 0;
    while names.len() < 95 + 94 {
        names.push(format!("Vole_Species_{i:02}"));
        i += 1;
    }
    let right = names.split_off(95);
    Vocabulary::new(names, right)
}

/// CAL500: left = 36 emotions + 21 usages + 21 song qualities (78);
/// right = 25 genres + 40 instruments + 32 vocal qualities (97).
pub fn cal500_vocabulary() -> Vocabulary {
    const EMOTIONS: [&str; 36] = [
        "happy",
        "sad",
        "angry",
        "tender",
        "exciting",
        "calming",
        "aggressive",
        "mellow",
        "bizarre",
        "cheerful",
        "arousing",
        "boring",
        "carefree",
        "emotional",
        "laid-back",
        "light",
        "loving",
        "optimistic",
        "pessimistic",
        "positive",
        "powerful",
        "weary",
        "touching",
        "tense",
        "soothing",
        "romantic",
        "pleasant",
        "peaceful",
        "passionate",
        "joyful",
        "hopeful",
        "haunting",
        "gentle",
        "energetic",
        "dreamy",
        "cool",
    ];
    const USAGES: [&str; 21] = [
        "driving",
        "studying",
        "sleeping",
        "party",
        "workout",
        "dancing",
        "reading",
        "cleaning",
        "waking-up",
        "relaxing",
        "dinner",
        "romancing",
        "celebrating",
        "commuting",
        "gaming",
        "background",
        "concentration",
        "meditation",
        "running",
        "socializing",
        "traveling",
    ];
    const SONG: [&str; 21] = [
        "catchy",
        "danceable",
        "fast",
        "slow",
        "loud",
        "quiet",
        "heavy",
        "soft",
        "melodic",
        "rhythmic",
        "repetitive",
        "complex",
        "simple",
        "acoustic-feel",
        "electric-feel",
        "high-energy",
        "low-energy",
        "positive-feelings",
        "negative-feelings",
        "memorable",
        "groovy",
    ];
    const GENRES: [&str; 25] = [
        "Rock",
        "R&B",
        "Pop",
        "Jazz",
        "Blues",
        "Country",
        "Folk",
        "Electronica",
        "Hip-Hop",
        "Rap",
        "Metal",
        "Punk",
        "Alternative",
        "Alternative-Rock",
        "Classic-Rock",
        "Soft-Rock",
        "Hard-Rock",
        "Soul",
        "Funk",
        "Gospel",
        "Reggae",
        "World",
        "Classical",
        "Dance",
        "Singer-Songwriter",
    ];
    const INSTRUMENTS: [&str; 40] = [
        "Guitar-Acoustic",
        "Guitar-Electric",
        "Guitar-Distorted",
        "Bass",
        "Drum-Set",
        "Drum-Machine",
        "Piano",
        "Keyboard",
        "Synthesizer",
        "Organ",
        "Violin",
        "Fiddle",
        "Cello",
        "String-Section",
        "Horn-Section",
        "Trumpet",
        "Saxophone",
        "Trombone",
        "Flute",
        "Clarinet",
        "Harmonica",
        "Accordion",
        "Banjo",
        "Mandolin",
        "Ukulele",
        "Harp",
        "Bells",
        "Xylophone",
        "Vibraphone",
        "Tambourine",
        "Congas",
        "Bongos",
        "Shakers",
        "Scratching",
        "Samples",
        "Sequencer",
        "Ambient-Sounds",
        "Hand-Claps",
        "Whistling",
        "Strings-Plucked",
    ];
    const VOCALS: [&str; 32] = [
        "Male-Lead",
        "Female-Lead",
        "Duet",
        "Choir",
        "Backing",
        "Falsetto",
        "Rapping",
        "Spoken",
        "Screaming",
        "Aggressive",
        "Breathy",
        "Gravelly",
        "Smooth",
        "High-Pitched",
        "Low-Pitched",
        "Emotional",
        "Monotone",
        "Vocal-Harmonies",
        "Call-Response",
        "Altered-Effects",
        "Strong",
        "Gentle",
        "Raspy",
        "Nasal",
        "Operatic",
        "Whispering",
        "Chanting",
        "Yodeling",
        "Humming",
        "Scat",
        "Crooning",
        "Powerful",
    ];
    let mut left: Vec<String> = EMOTIONS.iter().map(|e| format!("Emotion:{e}")).collect();
    left.extend(USAGES.iter().map(|u| format!("Usage:{u}")));
    left.extend(SONG.iter().map(|s| format!("Song:{s}")));
    let mut right: Vec<String> = GENRES.iter().map(|g| format!("Genre:{g}")).collect();
    right.extend(INSTRUMENTS.iter().map(|i| format!("Instrument:{i}")));
    right.extend(VOCALS.iter().map(|v| format!("Vocals:{v}")));
    Vocabulary::new(left, right)
}

/// Elections: left = 82 candidate-profile items; right = 867 items derived
/// from 30 multiple-choice questions (answer options + importances).
pub fn elections_vocabulary() -> Vocabulary {
    const PARTIES: [&str; 18] = [
        "Green-League",
        "SDP",
        "National-Coalition",
        "Centre",
        "Finns-Party",
        "Left-Alliance",
        "Swedish-Peoples",
        "Christian-Democrats",
        "Change-2011",
        "Pirate",
        "Communist",
        "Senior-Citizens",
        "Independence",
        "Workers",
        "Freedom",
        "Liberal",
        "Animal-Justice",
        "Independent",
    ];
    const DISTRICTS: [&str; 15] = [
        "Helsinki",
        "Uusimaa",
        "Varsinais-Suomi",
        "Satakunta",
        "Hame",
        "Pirkanmaa",
        "Kymi",
        "South-Savo",
        "North-Savo",
        "North-Karelia",
        "Vaasa",
        "Central-Finland",
        "Oulu",
        "Lapland",
        "Aland",
    ];
    const OCCUPATIONS: [&str; 10] = [
        "entrepreneur",
        "teacher",
        "lawyer",
        "doctor",
        "engineer",
        "farmer",
        "student",
        "pensioner",
        "artist",
        "researcher",
    ];
    const QUESTION_TOPICS: [&str; 30] = [
        "defense",
        "finance",
        "development-aid",
        "nuclear-energy",
        "immigration",
        "nato",
        "eu-policy",
        "taxation",
        "healthcare",
        "education",
        "pensions",
        "unemployment",
        "climate",
        "forestry",
        "agriculture",
        "transport",
        "municipal-reform",
        "language-policy",
        "gay-marriage",
        "alcohol-policy",
        "conscription",
        "wind-power",
        "tuition-fees",
        "labour-market",
        "privatisation",
        "child-benefits",
        "russia-policy",
        "greece-bailout",
        "media-support",
        "hunting",
    ];

    let mut left: Vec<String> = PARTIES.iter().map(|p| format!("party={p}")).collect();
    for a in ["18-25", "26-35", "36-45", "46-55", "56-65", "66+"] {
        left.push(format!("age={a}"));
    }
    for e in [
        "basic",
        "vocational",
        "upper-secondary",
        "bachelor",
        "master",
    ] {
        left.push(format!("education={e}"));
    }
    for g in ["female", "male"] {
        left.push(format!("gender={g}"));
    }
    for v in ["yes", "no"] {
        left.push(format!("incumbent={v}"));
    }
    for l in ["fi", "sv"] {
        left.push(format!("lang={l}"));
    }
    left.extend(DISTRICTS.iter().map(|d| format!("district={d}")));
    for v in ["yes", "no"] {
        left.push(format!("children={v}"));
    }
    left.extend(OCCUPATIONS.iter().map(|o| format!("occupation={o}")));
    for q in [
        "income=q1",
        "income=q2",
        "income=q3",
        "income=q4",
        "income=q5",
    ] {
        left.push(q.to_string());
    }
    for m in [
        "church-member=yes",
        "church-member=no",
        "church-member=other",
    ] {
        left.push(m.to_string());
    }
    for c in ["council-member=yes", "council-member=no"] {
        left.push(c.to_string());
    }
    left.push("uses-social-media=yes".into());
    left.push("has-campaign-site=yes".into());
    for m in ["married=yes", "married=no"] {
        left.push(m.to_string());
    }
    for m in ["military-rank=officer", "military-rank=none"] {
        left.push(m.to_string());
    }
    left.push("speaks-english=yes".into());
    left.push("speaks-russian=yes".into());
    for f in ["first-time-candidate=yes", "first-time-candidate=no"] {
        left.push(f.to_string());
    }
    assert_eq!(left.len(), 82, "Elections left vocabulary drifted");

    // 867 right items: 27 questions x 29 items + 3 questions x 28 items,
    // each question contributing answer options plus 3 importance levels.
    let mut right: Vec<String> = Vec::with_capacity(867);
    for (qi, topic) in QUESTION_TOPICS.iter().enumerate() {
        let n_opts = if qi < 27 { 26 } else { 25 };
        for o in 0..n_opts {
            right.push(format!("Q{:02}-{topic}=opt{o}", qi + 1));
        }
        for imp in ["low", "medium", "high"] {
            right.push(format!("Q{:02}-{topic}:importance={imp}", qi + 1));
        }
    }
    assert_eq!(right.len(), 867, "Elections right vocabulary drifted");
    Vocabulary::new(left, right)
}

/// Emotions: left = 86 audio features x 5 equal-height bins (430);
/// right = 12 emotion labels.
pub fn emotions_vocabulary() -> Vocabulary {
    let left = (0..86).flat_map(|f| (1..=5).map(move |b| format!("audio-f{f:02}:bin{b}")));
    let right = [
        "amazed-surprised",
        "happy-pleased",
        "relaxing-calm",
        "quiet-still",
        "sad-lonely",
        "angry-aggressive",
        "excited-energetic",
        "calm-soothing",
        "depressive-gloomy",
        "euphoric",
        "nostalgic",
        "anxious-tense",
    ]
    .iter()
    .map(|e| format!("Emotion:{e}"));
    Vocabulary::new(left.collect::<Vec<_>>(), right.collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::Side;

    #[test]
    fn all_vocabularies_match_paper_dimensions() {
        for ds in PaperDataset::ALL {
            let p = ds.paper();
            let v = ds.vocabulary();
            assert_eq!(v.n_left(), p.n_left, "{} left", ds.name());
            assert_eq!(v.n_right(), p.n_right, "{} right", ds.name());
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(PaperDataset::by_name("house"), Some(PaperDataset::House));
        assert_eq!(PaperDataset::by_name("CAL500"), Some(PaperDataset::Cal500));
        assert_eq!(PaperDataset::by_name("nope"), None);
    }

    #[test]
    fn small_and_large_partition_all() {
        let mut names: Vec<&str> = PaperDataset::SMALL
            .iter()
            .chain(PaperDataset::LARGE.iter())
            .map(|d| d.name())
            .collect();
        names.sort_unstable();
        let mut all: Vec<&str> = PaperDataset::ALL.iter().map(|d| d.name()).collect();
        all.sort_unstable();
        assert_eq!(names, all);
    }

    #[test]
    fn house_generation_matches_shape_and_density() {
        let out = PaperDataset::House.generate();
        let d = &out.dataset;
        let p = PaperDataset::House.paper();
        assert_eq!(d.n_transactions(), p.n);
        assert_eq!(d.vocab().n_left(), p.n_left);
        assert!((d.density(Side::Left) - p.d_left).abs() < 0.05);
        assert!((d.density(Side::Right) - p.d_right).abs() < 0.05);
        assert!(!out.concepts.is_empty());
        assert_eq!(d.name(), "House");
    }

    #[test]
    fn scaled_generation_caps_rows_and_minsup() {
        let out = PaperDataset::Adult.generate_scaled(2000);
        assert_eq!(out.dataset.n_transactions(), 2000);
        let ms = PaperDataset::Adult.minsup_for(2000);
        // 4885 * 2000/48842 = 200.0
        assert_eq!(ms, 200);
        assert_eq!(PaperDataset::Wine.minsup_for(178), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperDataset::Wine.generate();
        let b = PaperDataset::Wine.generate();
        for t in 0..a.dataset.n_transactions() {
            assert_eq!(
                a.dataset.transaction_items(t),
                b.dataset.transaction_items(t)
            );
        }
    }

    #[test]
    fn cal500_has_rock_genre() {
        let v = cal500_vocabulary();
        assert!(v.id_of("Genre:Rock").is_some());
        assert_eq!(v.side_of(v.id_of("Genre:Rock").unwrap()), Side::Right);
    }

    #[test]
    fn house_vote_items_on_expected_sides() {
        let v = house_vocabulary();
        assert_eq!(v.side_of(v.id_of("party=democrat").unwrap()), Side::Left);
        assert_eq!(
            v.side_of(v.id_of("physician-fee-freeze=n").unwrap()),
            Side::Left
        );
        assert_eq!(v.side_of(v.id_of("immigration=n").unwrap()), Side::Right);
        assert_eq!(v.side_of(v.id_of("mx-missile=?").unwrap()), Side::Right);
    }
}
