//! Synthetic two-view data with *planted* cross-view structure.
//!
//! The paper evaluates on 14 real datasets that we cannot redistribute, so
//! the corpus module re-creates each of them synthetically (see
//! `DESIGN.md §4`). The generator here is the common machinery: it plants a
//! configurable number of cross-view *concepts* — pairs `(X ⊆ I_L, Y ⊆ I_R)`
//! that tend to occur together — and then adds independent background noise
//! calibrated so each side hits a target density. The planted concepts are
//! returned as ground truth, which the test-suite uses to check that
//! TRANSLATOR recovers them.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::bitmap::Bitmap;
use crate::dataset::TwoViewDataset;
use crate::error::DataError;
use crate::items::{ItemId, ItemSet, Side, Vocabulary};

/// A planted cross-view association (ground truth for one generated dataset).
#[derive(Clone, Debug)]
pub struct PlantedConcept {
    /// Left-hand itemset (global ids).
    pub left: ItemSet,
    /// Right-hand itemset (global ids).
    pub right: ItemSet,
    /// Probability that the concept is active in a transaction.
    pub occurrence: f64,
    /// Probability that the right side fires when the concept is active.
    pub confidence: f64,
    /// Symmetric concepts never fire their right side alone; asymmetric ones
    /// do, which caps the confidence of the `←` direction.
    pub bidirectional: bool,
}

/// How much cross-view structure to plant.
#[derive(Clone, Debug, PartialEq)]
pub struct StructureSpec {
    /// Number of planted concepts.
    pub n_concepts: usize,
    /// Per-transaction activation probability of each concept.
    pub occurrence: f64,
    /// `P(right fires | concept active)`.
    pub confidence: f64,
    /// Per-item firing probability inside an active concept (itemsets fire
    /// *almost* completely, like real attribute blocks).
    pub item_fire: f64,
    /// Fraction of concepts that are symmetric (bidirectional).
    pub bidir_fraction: f64,
    /// Inclusive size range for the left itemsets.
    pub left_size: (usize, usize),
    /// Inclusive size range for the right itemsets.
    pub right_size: (usize, usize),
    /// Concept activations are decided per *block* of this many
    /// consecutive transactions instead of per transaction, so item
    /// columns carry long tid runs (sorted / temporal corpora). `0` or
    /// `1` keeps the classic per-transaction draw — and, importantly,
    /// the exact historical RNG call sequence, so existing seeds
    /// reproduce byte-identical datasets.
    pub burst_len: usize,
}

impl StructureSpec {
    /// No structure at all: the generated data is pure independent noise.
    pub fn none() -> Self {
        StructureSpec {
            n_concepts: 0,
            occurrence: 0.0,
            confidence: 0.0,
            item_fire: 0.0,
            bidir_fraction: 0.0,
            left_size: (1, 1),
            right_size: (1, 1),
            burst_len: 1,
        }
    }

    /// A reasonable default for "strong" planted structure.
    pub fn strong(n_concepts: usize) -> Self {
        StructureSpec {
            n_concepts,
            occurrence: 0.25,
            confidence: 0.9,
            item_fire: 0.95,
            bidir_fraction: 0.5,
            left_size: (2, 4),
            right_size: (2, 3),
            burst_len: 1,
        }
    }

    /// `strong` structure whose concepts activate in blocks of
    /// `burst_len` consecutive transactions — tid columns become runs.
    pub fn bursty(n_concepts: usize, burst_len: usize) -> Self {
        StructureSpec {
            burst_len,
            ..StructureSpec::strong(n_concepts)
        }
    }
}

/// Full description of one synthetic two-view dataset.
#[derive(Clone, Debug)]
pub struct SyntheticSpec {
    /// Dataset name (also attached to the generated [`TwoViewDataset`]).
    pub name: String,
    /// `|D|`.
    pub n_transactions: usize,
    /// `|I_L|` — ignored when an explicit vocabulary is supplied.
    pub n_left: usize,
    /// `|I_R|` — ignored when an explicit vocabulary is supplied.
    pub n_right: usize,
    /// Target density of the left view.
    pub density_left: f64,
    /// Target density of the right view.
    pub density_right: f64,
    /// Planted structure.
    pub structure: StructureSpec,
    /// RNG seed — generation is fully deterministic given the spec.
    pub seed: u64,
}

impl SyntheticSpec {
    /// Validates ranges (densities in `[0,1]`, probabilities in `[0,1]`,
    /// non-empty dimensions).
    pub fn validate(&self) -> Result<(), DataError> {
        let prob = |v: f64, what: &str| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(DataError::Config(format!("{what} = {v} outside [0,1]")))
            }
        };
        prob(self.density_left, "density_left")?;
        prob(self.density_right, "density_right")?;
        prob(self.structure.occurrence, "occurrence")?;
        prob(self.structure.confidence, "confidence")?;
        prob(self.structure.item_fire, "item_fire")?;
        prob(self.structure.bidir_fraction, "bidir_fraction")?;
        if self.n_left == 0 || self.n_right == 0 {
            return Err(DataError::Config("empty item vocabulary".into()));
        }
        if self.structure.left_size.0 > self.structure.left_size.1
            || self.structure.right_size.0 > self.structure.right_size.1
        {
            return Err(DataError::Config("inverted itemset size range".into()));
        }
        Ok(())
    }

    /// Returns a copy scaled to at most `max_transactions` rows (structure
    /// and densities unchanged). Used for quick experiment runs.
    pub fn scaled_to(&self, max_transactions: usize) -> SyntheticSpec {
        let mut s = self.clone();
        s.n_transactions = s.n_transactions.min(max_transactions);
        s
    }
}

/// A generated dataset together with its planted ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The generated two-view data.
    pub dataset: TwoViewDataset,
    /// The concepts that were planted (ground truth).
    pub concepts: Vec<PlantedConcept>,
}

/// Generates a dataset from `spec` with an auto-built unnamed vocabulary.
pub fn generate(spec: &SyntheticSpec) -> Result<SyntheticDataset, DataError> {
    generate_with_vocab(spec, Vocabulary::unnamed(spec.n_left, spec.n_right))
}

/// Generates a dataset from `spec` using the given (named) vocabulary.
///
/// The vocabulary's dimensions override `spec.n_left`/`spec.n_right`.
pub fn generate_with_vocab(
    spec: &SyntheticSpec,
    vocab: Vocabulary,
) -> Result<SyntheticDataset, DataError> {
    let mut spec = spec.clone();
    spec.n_left = vocab.n_left();
    spec.n_right = vocab.n_right();
    spec.validate()?;

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = spec.n_transactions;
    let concepts = plant_concepts(&spec, &vocab, &mut rng);

    // Row bitmaps in local per-side indices.
    let mut left_rows = vec![Bitmap::new(spec.n_left); n];
    let mut right_rows = vec![Bitmap::new(spec.n_right); n];

    // Phase 1: structure.
    if spec.structure.burst_len <= 1 {
        // Classic per-transaction draws. This branch is kept verbatim so
        // the RNG call sequence — and therefore every historical seed —
        // is byte-identical when bursts are off.
        for t in 0..n {
            for c in &concepts {
                if rng.gen_bool(c.occurrence) {
                    fire(
                        &mut left_rows[t],
                        &c.left,
                        &vocab,
                        spec.structure.item_fire,
                        &mut rng,
                    );
                    if rng.gen_bool(c.confidence) {
                        fire(
                            &mut right_rows[t],
                            &c.right,
                            &vocab,
                            spec.structure.item_fire,
                            &mut rng,
                        );
                    }
                } else if !c.bidirectional && rng.gen_bool(c.occurrence * 0.6) {
                    // Asymmetric concepts fire their right side alone now and
                    // then: the L→R direction stays strong, the R→L one
                    // weakens.
                    fire(
                        &mut right_rows[t],
                        &c.right,
                        &vocab,
                        spec.structure.item_fire,
                        &mut rng,
                    );
                }
            }
        }
    } else {
        // Bursty draws: one activation decision per block of consecutive
        // transactions, so each concept's tid column is a union of runs
        // of length ≈ burst_len (modulo per-item fire noise).
        let burst = spec.structure.burst_len;
        let mut t0 = 0usize;
        while t0 < n {
            let t1 = (t0 + burst).min(n);
            for c in &concepts {
                if rng.gen_bool(c.occurrence) {
                    let right_fires = rng.gen_bool(c.confidence);
                    for t in t0..t1 {
                        fire(
                            &mut left_rows[t],
                            &c.left,
                            &vocab,
                            spec.structure.item_fire,
                            &mut rng,
                        );
                        if right_fires {
                            fire(
                                &mut right_rows[t],
                                &c.right,
                                &vocab,
                                spec.structure.item_fire,
                                &mut rng,
                            );
                        }
                    }
                } else if !c.bidirectional && rng.gen_bool(c.occurrence * 0.6) {
                    for row in &mut right_rows[t0..t1] {
                        fire(row, &c.right, &vocab, spec.structure.item_fire, &mut rng);
                    }
                }
            }
            t0 = t1;
        }
    }

    // Phase 2: noise, calibrated to reach the target densities.
    add_noise(&mut left_rows, spec.n_left, spec.density_left, n, &mut rng);
    add_noise(
        &mut right_rows,
        spec.n_right,
        spec.density_right,
        n,
        &mut rng,
    );

    // Assemble transactions as global id lists.
    let mut transactions: Vec<Vec<ItemId>> = Vec::with_capacity(n);
    for t in 0..n {
        let mut items: Vec<ItemId> = left_rows[t]
            .iter()
            .map(|l| vocab.global_id(Side::Left, l))
            .collect();
        items.extend(
            right_rows[t]
                .iter()
                .map(|l| vocab.global_id(Side::Right, l)),
        );
        transactions.push(items);
    }

    let dataset = TwoViewDataset::from_transactions(vocab, &transactions).with_name(&spec.name);
    Ok(SyntheticDataset { dataset, concepts })
}

/// Samples the planted concepts. Items are drawn from shuffled per-side
/// pools so early concepts use distinct items and stay individually
/// recoverable; pools recycle if structure demands more items than exist.
fn plant_concepts(
    spec: &SyntheticSpec,
    vocab: &Vocabulary,
    rng: &mut StdRng,
) -> Vec<PlantedConcept> {
    let mut left_pool: Vec<ItemId> = vocab.items_on(Side::Left).collect();
    let mut right_pool: Vec<ItemId> = vocab.items_on(Side::Right).collect();
    left_pool.shuffle(rng);
    right_pool.shuffle(rng);
    let (mut li, mut ri) = (0usize, 0usize);

    let take = |pool: &mut Vec<ItemId>, cursor: &mut usize, k: usize, rng: &mut StdRng| {
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            if *cursor >= pool.len() {
                pool.shuffle(rng);
                *cursor = 0;
            }
            out.push(pool[*cursor]);
            *cursor += 1;
        }
        ItemSet::from_items(out)
    };

    (0..spec.structure.n_concepts)
        .map(|j| {
            let ls = rng.gen_range(spec.structure.left_size.0..=spec.structure.left_size.1);
            let rs = rng.gen_range(spec.structure.right_size.0..=spec.structure.right_size.1);
            let bidirectional = (j as f64 + 0.5) / spec.structure.n_concepts.max(1) as f64
                <= spec.structure.bidir_fraction;
            PlantedConcept {
                left: take(&mut left_pool, &mut li, ls, rng),
                right: take(&mut right_pool, &mut ri, rs, rng),
                occurrence: spec.structure.occurrence,
                confidence: spec.structure.confidence,
                bidirectional,
            }
        })
        .collect()
}

/// Sets each item of `set` in `row` with probability `p` (local indices).
fn fire(row: &mut Bitmap, set: &ItemSet, vocab: &Vocabulary, p: f64, rng: &mut StdRng) {
    for item in set.iter() {
        if rng.gen_bool(p) {
            row.insert(vocab.local_index(item));
        }
    }
}

/// Adds independent noise so the side reaches `target_density` in
/// expectation. Noise only *adds* ones; if the planted structure alone
/// already exceeds the target the side is left as-is (documented behaviour).
fn add_noise(rows: &mut [Bitmap], n_items: usize, target_density: f64, n: usize, rng: &mut StdRng) {
    let cells = n * n_items;
    if cells == 0 {
        return;
    }
    let structural: usize = rows.iter().map(Bitmap::len).sum();
    let target_ones = target_density * cells as f64;
    let free = cells - structural;
    if free == 0 {
        return;
    }
    let p = ((target_ones - structural as f64) / free as f64).clamp(0.0, 1.0);
    if p == 0.0 {
        return;
    }
    for row in rows.iter_mut() {
        for i in 0..n_items {
            if !row.contains(i) && rng.gen_bool(p) {
                row.insert(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(structure: StructureSpec) -> SyntheticSpec {
        SyntheticSpec {
            name: "test".into(),
            n_transactions: 500,
            n_left: 20,
            n_right: 15,
            density_left: 0.2,
            density_right: 0.25,
            structure,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spec(StructureSpec::strong(4));
        let a = generate(&s).unwrap();
        let b = generate(&s).unwrap();
        for t in 0..a.dataset.n_transactions() {
            assert_eq!(
                a.dataset.transaction_items(t),
                b.dataset.transaction_items(t)
            );
        }
        assert_eq!(a.concepts.len(), b.concepts.len());
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = spec(StructureSpec::strong(4));
        let mut s2 = s1.clone();
        s2.seed = 43;
        let a = generate(&s1).unwrap();
        let b = generate(&s2).unwrap();
        let differs = (0..a.dataset.n_transactions())
            .any(|t| a.dataset.transaction_items(t) != b.dataset.transaction_items(t));
        assert!(differs);
    }

    #[test]
    fn densities_hit_target() {
        let s = spec(StructureSpec::strong(4));
        let d = generate(&s).unwrap().dataset;
        assert!(
            (d.density(Side::Left) - 0.2).abs() < 0.03,
            "{}",
            d.density(Side::Left)
        );
        assert!(
            (d.density(Side::Right) - 0.25).abs() < 0.03,
            "{}",
            d.density(Side::Right)
        );
    }

    #[test]
    fn noise_only_matches_density_too() {
        let s = spec(StructureSpec::none());
        let out = generate(&s).unwrap();
        assert!(out.concepts.is_empty());
        let d = out.dataset;
        assert!((d.density(Side::Left) - 0.2).abs() < 0.03);
    }

    #[test]
    fn planted_concepts_are_cross_view_and_sized() {
        let s = spec(StructureSpec::strong(5));
        let out = generate(&s).unwrap();
        assert_eq!(out.concepts.len(), 5);
        let vocab = out.dataset.vocab();
        for c in &out.concepts {
            assert!(!c.left.is_empty() && !c.right.is_empty());
            assert!(c.left.iter().all(|i| vocab.side_of(i) == Side::Left));
            assert!(c.right.iter().all(|i| vocab.side_of(i) == Side::Right));
            assert!((2..=4).contains(&c.left.len()));
            assert!((2..=3).contains(&c.right.len()));
        }
    }

    #[test]
    fn planted_structure_shows_in_confidence() {
        // With strong planting, supp(X ∪ Y) / supp(X) must be well above the
        // background rate for at least one concept.
        let s = spec(StructureSpec::strong(3));
        let out = generate(&s).unwrap();
        let d = &out.dataset;
        let mut found_strong = false;
        for c in &out.concepts {
            let sx = d.support_count(&c.left);
            if sx == 0 {
                continue;
            }
            let sxy = d.support_count(&c.left.union(&c.right));
            let conf = sxy as f64 / sx as f64;
            if conf > 0.5 {
                found_strong = true;
            }
        }
        assert!(found_strong, "no planted concept is recoverable");
    }

    #[test]
    fn bursty_structure_produces_tid_runs() {
        let mut s = spec(StructureSpec::bursty(3, 25));
        s.density_left = 0.0;
        s.density_right = 0.0;
        let out = generate(&s).unwrap();
        let item = out.concepts[0].left.iter().next().unwrap();
        let tids: Vec<usize> = (0..out.dataset.n_transactions())
            .filter(|&t| out.dataset.transaction_items(t).contains(item))
            .collect();
        assert!(tids.len() >= 25, "planted item too rare: {}", tids.len());
        let runs = tids.windows(2).filter(|w| w[1] != w[0] + 1).count() + 1;
        let mean_run = tids.len() as f64 / runs as f64;
        assert!(
            mean_run >= 4.0,
            "bursts should produce long runs, mean {mean_run} over {runs} runs"
        );
        // Per-transaction draws on the same seed give near-singleton runs.
        let mut s1 = s.clone();
        s1.structure.burst_len = 1;
        let flat = generate(&s1).unwrap();
        let flat_tids: Vec<usize> = (0..flat.dataset.n_transactions())
            .filter(|&t| flat.dataset.transaction_items(t).contains(item))
            .collect();
        let flat_runs = flat_tids.windows(2).filter(|w| w[1] != w[0] + 1).count() + 1;
        let flat_mean = flat_tids.len() as f64 / flat_runs as f64;
        assert!(flat_mean < mean_run, "{flat_mean} vs {mean_run}");
    }

    #[test]
    fn burst_len_zero_and_one_share_the_classic_path() {
        let mut a = spec(StructureSpec::strong(4));
        a.structure.burst_len = 0;
        let mut b = spec(StructureSpec::strong(4));
        b.structure.burst_len = 1;
        let da = generate(&a).unwrap().dataset;
        let db = generate(&b).unwrap().dataset;
        for t in 0..da.n_transactions() {
            assert_eq!(da.transaction_items(t), db.transaction_items(t));
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = spec(StructureSpec::none());
        s.density_left = 1.5;
        assert!(s.validate().is_err());
        let mut s = spec(StructureSpec::none());
        s.n_left = 0;
        assert!(generate(&s).is_err());
        let mut s = spec(StructureSpec::strong(2));
        s.structure.left_size = (3, 2);
        assert!(s.validate().is_err());
    }

    #[test]
    fn scaled_to_caps_transactions() {
        let s = spec(StructureSpec::none());
        assert_eq!(s.scaled_to(100).n_transactions, 100);
        assert_eq!(s.scaled_to(10_000).n_transactions, 500);
    }

    #[test]
    fn named_vocab_is_used() {
        let s = spec(StructureSpec::none());
        let vocab = Vocabulary::new(
            (0..20).map(|i| format!("vote{i}")),
            (0..15).map(|i| format!("law{i}")),
        );
        let d = generate_with_vocab(&s, vocab).unwrap().dataset;
        assert_eq!(d.vocab().name(0), "vote0");
        assert_eq!(d.vocab().name(20), "law0");
    }
}
