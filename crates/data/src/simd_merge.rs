//! Vectorised sparse-merge kernels for sorted `u32` tid lists.
//!
//! The sparse half of [`crate::tidset::Tidset`] stores sorted unique tids;
//! its sparse×sparse intersection / difference / subset kernels bottom out
//! here. Three merge strategies are layered:
//!
//! * **galloping** — when one operand is at least [`GALLOP_FACTOR`]× shorter,
//!   each of its elements exponential-searches the longer list
//!   ([`gallop_to`]); asymptotically unbeatable at high skew;
//! * **SIMD block merge** (x86_64 only) — for comparable sizes, four-lane
//!   SSE2 blocks are compared all-against-all via cyclic shuffles
//!   (`_mm_shuffle_epi32` + `_mm_cmpeq_epi32`), with *block skipping*:
//!   disjoint blocks (`a[i] > b[j+3]`) advance on a single scalar compare
//!   without any lane work. SSE2 is part of the x86_64 baseline, so no
//!   runtime feature detection is needed;
//! * **scalar two-pointer merge** — the reference path, always compiled,
//!   the only path on non-x86_64 targets.
//!
//! All paths produce identical results (sets of tids are exact, no
//! floating point is involved); the differential property tests in
//! `tests/proptests_tidset.rs` pin `simd == scalar` on random inputs.
//!
//! [`KernelPath`] selects the path process-wide (`TWOVIEW_TIDSET_KERNEL`
//! env: `auto` | `simd` | `scalar`); CI runs the full suite under
//! `scalar` to keep the reference path honest.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which sparse-merge kernel implementation non-skewed merges use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// Scalar two-pointer merges — the reference path.
    Scalar = 0,
    /// SSE2 block merges where available (x86_64), scalar elsewhere.
    Simd = 1,
}

fn path_cell() -> &'static AtomicU8 {
    static CELL: OnceLock<AtomicU8> = OnceLock::new();
    CELL.get_or_init(|| {
        let initial = match std::env::var("TWOVIEW_TIDSET_KERNEL").as_deref() {
            Ok("scalar") => KernelPath::Scalar,
            Ok("simd") | Ok("auto") | Err(_) => KernelPath::Simd,
            Ok(other) => {
                // A typo'd selector silently measuring the wrong kernel
                // would invalidate a differential run; be loud about it.
                eprintln!(
                    "twoview-data: unrecognized TWOVIEW_TIDSET_KERNEL={other:?} \
                     (expected auto|simd|scalar); using auto"
                );
                KernelPath::Simd
            }
        };
        AtomicU8::new(initial as u8)
    })
}

/// The process-wide merge-kernel path. `Simd` degrades to the scalar
/// implementation on targets without SSE2 support.
pub fn kernel_path() -> KernelPath {
    match path_cell().load(Ordering::Relaxed) {
        0 => KernelPath::Scalar,
        _ => KernelPath::Simd,
    }
}

/// Sets the process-wide merge-kernel path. Results are identical either
/// way — this only exists for benchmarks and differential tests (the
/// default, overridable via `TWOVIEW_TIDSET_KERNEL`, is right everywhere
/// else).
pub fn set_kernel_path(path: KernelPath) {
    path_cell().store(path as u8, Ordering::Relaxed);
}

#[inline]
fn simd_active() -> bool {
    cfg!(target_arch = "x86_64") && kernel_path() == KernelPath::Simd
}

/// Number of elements of `a` strictly below `x`, found by exponential
/// search + binary refinement — the "gallop" step of the skewed merges.
#[inline]
pub(crate) fn gallop_to(a: &[u32], x: u32) -> usize {
    if a.first().is_none_or(|&f| f >= x) {
        return 0;
    }
    let mut hi = 1usize;
    while hi < a.len() && a[hi] < x {
        hi <<= 1;
    }
    let lo = hi >> 1;
    let end = hi.min(a.len());
    lo + a[lo..end].partition_point(|&v| v < x)
}

/// When the smaller operand is at least this factor shorter, gallop per
/// element instead of merging blocks.
pub(crate) const GALLOP_FACTOR: usize = 8;

// ---------------------------------------------------------------- scalar
// reference kernels (always compiled; the only path off x86_64)

/// Scalar `a ∩ b`, appended to `out`: gallop when skewed, two-pointer
/// merge otherwise. This is the reference the SIMD path must match.
pub fn scalar_intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    scalar_intersect_visit(a, b, |x| out.push(x));
}

/// Scalar `|a ∩ b|`.
pub fn scalar_intersect_count(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0usize;
    scalar_intersect_visit(a, b, |_| count += 1);
    count
}

/// Walks `a ∩ b` in ascending order, calling `emit` per common element —
/// the single scalar implementation behind both the materialising and the
/// counting intersection, so the gallop heuristics cannot drift apart.
#[inline]
fn scalar_intersect_visit(a: &[u32], b: &[u32], mut emit: impl FnMut(u32)) {
    let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if s.len().saturating_mul(GALLOP_FACTOR) < l.len() {
        let mut off = 0usize;
        for &x in s {
            off += gallop_to(&l[off..], x);
            if off >= l.len() {
                break;
            }
            if l[off] == x {
                emit(x);
                off += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < s.len() && j < l.len() {
            match s[i].cmp(&l[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    emit(s[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Scalar `a \ b`, appended to `out`: gallop probes when `a` is much
/// shorter, two-pointer merge otherwise.
pub fn scalar_difference_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    if a.len().saturating_mul(GALLOP_FACTOR) < b.len() {
        let mut off = 0usize;
        for &x in a {
            off += gallop_to(&b[off..], x);
            if off < b.len() && b[off] == x {
                off += 1;
            } else {
                out.push(x);
            }
        }
        return;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
}

/// Scalar `a ⊆ b` with early exit: gallop probes when skewed, two-pointer
/// merge otherwise.
pub fn scalar_is_subset(a: &[u32], b: &[u32]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    if a.len().saturating_mul(GALLOP_FACTOR) < b.len() {
        let mut off = 0usize;
        for &x in a {
            off += gallop_to(&b[off..], x);
            if off >= b.len() || b[off] != x {
                return false;
            }
            off += 1;
        }
        return true;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() {
        if j >= b.len() {
            return false;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    true
}

// ------------------------------------------------------------------ SIMD
// (SSE2 block merges; x86_64 only — SSE2 is in the baseline feature set)

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use std::arch::x86_64::{
        __m128i, _mm_castsi128_ps, _mm_cmpeq_epi32, _mm_loadu_si128, _mm_movemask_ps, _mm_or_si128,
        _mm_shuffle_epi32,
    };

    /// 4-bit lane mask: bit `k` set iff `a[k]` occurs anywhere in the four
    /// lanes of `b` — `_mm_cmpeq_epi32` against all four cyclic rotations
    /// of `b`, OR-folded, then `movemask` over the lane sign bits.
    ///
    /// # Safety
    /// `a` and `b` must each point at 4 readable `u32`s. Only SSE2
    /// instructions are used, which every x86_64 CPU provides.
    #[inline]
    unsafe fn matches4(a: *const u32, b: *const u32) -> u32 {
        // SAFETY: the caller provides 4 readable `u32`s behind each
        // pointer (fn contract); the intrinsics are SSE2, baseline on
        // every x86_64 target.
        unsafe {
            let va = _mm_loadu_si128(a as *const __m128i);
            let vb = _mm_loadu_si128(b as *const __m128i);
            let eq0 = _mm_cmpeq_epi32(va, vb);
            let eq1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b00_11_10_01));
            let eq2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b01_00_11_10));
            let eq3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b10_01_00_11));
            let any = _mm_or_si128(_mm_or_si128(eq0, eq1), _mm_or_si128(eq2, eq3));
            _mm_movemask_ps(_mm_castsi128_ps(any)) as u32
        }
    }

    /// The shared SSE2 block-merge skeleton: walks 4-lane blocks of `a`
    /// and `b`, accumulating per-`a`-block match masks (an `a` block may
    /// match across several `b` blocks), and hands each *finished* `a`
    /// block — its start index and 4-bit match mask — to `flush`. Blocks
    /// whose ranges cannot overlap are skipped on one scalar compare.
    /// Returns the scalar-tail start positions `(i, j)`.
    ///
    /// The final `a` block may exit the loop only partially compared; it
    /// is flushed with `tail = Some(j)`: its *matched* lanes are final
    /// (every `b` element small enough to match was compared), but its
    /// unmatched lanes must still consult the remaining `b` suffix
    /// `b[j..]`. All fully-compared blocks flush with `tail = None`.
    #[inline]
    fn block_merge(
        a: &[u32],
        b: &[u32],
        mut flush: impl FnMut(usize, u32, Option<usize>) -> bool,
    ) -> Option<(usize, usize)> {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0u32;
        while i + 4 <= a.len() && j + 4 <= b.len() {
            let amax = a[i + 3];
            let bmax = b[j + 3];
            if a[i] > bmax {
                // Disjoint blocks: nothing in this b block can match.
                j += 4;
                continue;
            }
            if b[j] > amax {
                // All remaining b elements exceed this a block: finish it.
                if !flush(i, acc, None) {
                    return None;
                }
                i += 4;
                acc = 0;
                continue;
            }
            // SAFETY: both blocks have 4 in-bounds elements (loop guard).
            acc |= unsafe { matches4(a.as_ptr().add(i), b.as_ptr().add(j)) };
            if amax <= bmax {
                if !flush(i, acc, None) {
                    return None;
                }
                i += 4;
                acc = 0;
            }
            if bmax <= amax {
                j += 4;
            }
        }
        // Even when b is exhausted the partial block must flush — its acc
        // may hold matches found before b ran out (an empty b[j..] suffix
        // then resolves every unmatched lane correctly).
        if i + 4 <= a.len() {
            if !flush(i, acc, Some(j)) {
                return None;
            }
            i += 4;
        }
        Some((i, j))
    }

    /// SSE2 `a ∩ b` appended to `out` (same result as the scalar merge).
    pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
        let tails = block_merge(a, b, |i, acc, tail| {
            for k in 0..4 {
                if acc >> k & 1 == 1 {
                    out.push(a[i + k]);
                } else if let Some(j) = tail {
                    if b[j..].binary_search(&a[i + k]).is_ok() {
                        out.push(a[i + k]);
                    }
                }
            }
            true
        });
        // lint: allow(panic_hygiene) — the visitor returns true for every block, so block_merge yields the tails
        let (i, j) = tails.expect("intersection flush never aborts");
        super::scalar_intersect_into(&a[i..], &b[j..], out);
    }

    /// SSE2 `|a ∩ b|`.
    pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
        let mut count = 0usize;
        let tails = block_merge(a, b, |i, acc, tail| {
            count += acc.count_ones() as usize;
            if let Some(j) = tail {
                for k in 0..4 {
                    if acc >> k & 1 == 0 && b[j..].binary_search(&a[i + k]).is_ok() {
                        count += 1;
                    }
                }
            }
            true
        });
        // lint: allow(panic_hygiene) — the visitor returns true for every block, so block_merge yields the tails
        let (i, j) = tails.expect("count flush never aborts");
        count + super::scalar_intersect_count(&a[i..], &b[j..])
    }

    /// SSE2 `a \ b` appended to `out`.
    pub fn difference_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
        let tails = block_merge(a, b, |i, acc, tail| {
            for k in 0..4 {
                if acc >> k & 1 == 0 {
                    match tail {
                        None => out.push(a[i + k]),
                        Some(j) => {
                            if b[j..].binary_search(&a[i + k]).is_err() {
                                out.push(a[i + k]);
                            }
                        }
                    }
                }
            }
            true
        });
        // lint: allow(panic_hygiene) — the visitor returns true for every block, so block_merge yields the tails
        let (i, j) = tails.expect("difference flush never aborts");
        super::scalar_difference_into(&a[i..], &b[j..], out);
    }

    /// SSE2 `a ⊆ b` with block-level early exit.
    pub fn is_subset(a: &[u32], b: &[u32]) -> bool {
        let tails = block_merge(a, b, |i, acc, tail| match tail {
            None => acc == 0b1111,
            Some(j) => (0..4).all(|k| acc >> k & 1 == 1 || b[j..].binary_search(&a[i + k]).is_ok()),
        });
        match tails {
            None => false,
            Some((i, j)) => super::scalar_is_subset(&a[i..], &b[j..]),
        }
    }
}

// ------------------------------------------------------------ dispatchers

/// `a ∩ b` appended to `out`: gallop when skewed, SIMD or scalar block
/// merge otherwise (per [`kernel_path`]).
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if s.len().saturating_mul(GALLOP_FACTOR) < l.len() || !simd_active() {
        return scalar_intersect_into(a, b, out);
    }
    #[cfg(target_arch = "x86_64")]
    sse2::intersect_into(a, b, out);
}

/// `|a ∩ b|` (same dispatch as [`intersect_into`]).
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if s.len().saturating_mul(GALLOP_FACTOR) < l.len() || !simd_active() {
        return scalar_intersect_count(a, b);
    }
    #[cfg(target_arch = "x86_64")]
    return sse2::intersect_count(a, b);
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("simd_active is false off x86_64")
}

/// `a \ b` appended to `out`: gallop probes when `a` is much shorter,
/// SIMD or scalar merge otherwise.
pub fn difference_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    if a.len().saturating_mul(GALLOP_FACTOR) < b.len() || !simd_active() {
        return scalar_difference_into(a, b, out);
    }
    #[cfg(target_arch = "x86_64")]
    sse2::difference_into(a, b, out);
}

/// `a ⊆ b` with early exit (same dispatch as [`difference_into`]).
pub fn is_subset(a: &[u32], b: &[u32]) -> bool {
    if a.len().saturating_mul(GALLOP_FACTOR) < b.len() || !simd_active() {
        return scalar_is_subset(a, b);
    }
    #[cfg(target_arch = "x86_64")]
    return sse2::is_subset(a, b);
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("simd_active is false off x86_64")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive-ish differential check of every kernel against naive
    /// set algebra, on both paths. (The proptest suite adds randomized
    /// coverage; this pins the block-boundary edge cases.)
    fn check_pair(a: &[u32], b: &[u32]) {
        let expect_i: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
        let expect_d: Vec<u32> = a.iter().copied().filter(|x| !b.contains(x)).collect();
        let expect_s = a.iter().all(|x| b.contains(x));
        for path in [KernelPath::Scalar, KernelPath::Simd] {
            set_kernel_path(path);
            let mut got_i = Vec::new();
            intersect_into(a, b, &mut got_i);
            assert_eq!(got_i, expect_i, "{path:?} intersect {a:?} {b:?}");
            assert_eq!(
                intersect_count(a, b),
                expect_i.len(),
                "{path:?} count {a:?} {b:?}"
            );
            let mut got_d = Vec::new();
            difference_into(a, b, &mut got_d);
            assert_eq!(got_d, expect_d, "{path:?} difference {a:?} {b:?}");
            assert_eq!(is_subset(a, b), expect_s, "{path:?} subset {a:?} {b:?}");
        }
        set_kernel_path(KernelPath::Simd);
    }

    #[test]
    fn kernels_match_reference_on_block_boundaries() {
        let dense: Vec<u32> = (0..40).collect();
        let evens: Vec<u32> = (0..40).step_by(2).collect();
        let sevens: Vec<u32> = (0..200).step_by(7).collect();
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![]),
            (vec![1], vec![]),
            (vec![], vec![1]),
            (vec![1, 2, 3], vec![2, 3, 4]),
            (dense.clone(), evens.clone()),
            (evens.clone(), dense.clone()),
            (dense.clone(), sevens.clone()),
            (sevens.clone(), dense.clone()),
            // Matches spilling across b blocks for one a block.
            (vec![1, 2, 3, 100], vec![1, 2, 3, 4, 5, 6, 7, 100]),
            // Partial final blocks on both sides.
            (vec![0, 8, 16, 24, 32], vec![8, 9, 10, 24, 33]),
            // Fully disjoint interleaved blocks (exercises block skipping).
            (
                (0..32).collect::<Vec<u32>>(),
                (100..132).collect::<Vec<u32>>(),
            ),
            ((100..132).collect(), (0..32).collect()),
            // Subset relations.
            (evens.clone(), evens.clone()),
            (vec![2, 18, 38], evens.clone()),
            (vec![2, 18, 39], evens),
        ];
        for (a, b) in &cases {
            check_pair(a, b);
            check_pair(b, a);
        }
    }

    #[test]
    fn kernels_match_reference_on_pseudorandom_lists() {
        // Deterministic LCG inputs across a spread of densities and sizes.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (na, nb, modulus) in [
            (5, 400, 512),
            (60, 70, 256),
            (128, 128, 200),
            (33, 47, 4096),
        ] {
            let mut a: Vec<u32> = (0..na).map(|_| (next() % modulus) as u32).collect();
            let mut b: Vec<u32> = (0..nb).map(|_| (next() % modulus) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            check_pair(&a, &b);
            check_pair(&b, &a);
        }
    }
}
