//! Deterministic transaction sampling: subsamples, shuffles, and
//! exploratory/holdout splits.
//!
//! Webb's significant-pattern methodology (the Magnum Opus baseline)
//! offers two ways to control false discoveries: a Bonferroni-style
//! correction, or **holdout evaluation** — find rules on an exploratory
//! half, test them on a holdout half. The splits here feed the latter
//! (`twoview_baselines::magnum::magnum_opus_rules_holdout`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::TwoViewDataset;
use crate::items::ItemId;

/// Builds a new dataset from a subset of transaction indices (order kept).
///
/// The vocabulary is preserved verbatim, so itemsets and rules remain valid
/// across the original and the sample.
pub fn take_transactions(data: &TwoViewDataset, indices: &[usize]) -> TwoViewDataset {
    let transactions: Vec<Vec<ItemId>> = indices
        .iter()
        .map(|&t| {
            assert!(t < data.n_transactions(), "transaction {t} out of range");
            data.transaction_items(t).iter().collect()
        })
        .collect();
    TwoViewDataset::from_transactions(data.vocab().clone(), &transactions)
        .with_name(data.name().to_string())
}

/// Deterministic random subsample of `k` transactions (without
/// replacement; `k` is clamped to `|D|`).
pub fn subsample(data: &TwoViewDataset, k: usize, seed: u64) -> TwoViewDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..data.n_transactions()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(k.min(data.n_transactions()));
    idx.sort_unstable(); // keep original order for reproducible row ids
    take_transactions(data, &idx)
}

/// Splits into an exploratory and a holdout part with the given exploratory
/// fraction (deterministic given the seed).
pub fn holdout_split(
    data: &TwoViewDataset,
    exploratory_fraction: f64,
    seed: u64,
) -> (TwoViewDataset, TwoViewDataset) {
    assert!(
        (0.0..=1.0).contains(&exploratory_fraction),
        "fraction outside [0,1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..data.n_transactions()).collect();
    idx.shuffle(&mut rng);
    let cut = (exploratory_fraction * data.n_transactions() as f64).round() as usize;
    let (mut explore, mut hold) = (idx[..cut].to_vec(), idx[cut..].to_vec());
    explore.sort_unstable();
    hold.sort_unstable();
    (
        take_transactions(data, &explore),
        take_transactions(data, &hold),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{ItemSet, Vocabulary};

    fn toy(n: usize) -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        let txs: Vec<Vec<ItemId>> = (0..n)
            .map(|t| match t % 3 {
                0 => vec![0, 2],
                1 => vec![1, 3],
                _ => vec![0, 1, 2, 3],
            })
            .collect();
        TwoViewDataset::from_transactions(vocab, &txs).with_name("toy")
    }

    #[test]
    fn take_preserves_rows_and_vocab() {
        let d = toy(9);
        let s = take_transactions(&d, &[0, 4, 8]);
        assert_eq!(s.n_transactions(), 3);
        assert_eq!(s.vocab().n_items(), 4);
        assert_eq!(s.name(), "toy");
        assert_eq!(s.transaction_items(0), d.transaction_items(0));
        assert_eq!(s.transaction_items(1), d.transaction_items(4));
        assert_eq!(s.transaction_items(2), d.transaction_items(8));
    }

    #[test]
    fn subsample_is_deterministic_and_sized() {
        let d = toy(30);
        let a = subsample(&d, 10, 42);
        let b = subsample(&d, 10, 42);
        assert_eq!(a.n_transactions(), 10);
        for t in 0..10 {
            assert_eq!(a.transaction_items(t), b.transaction_items(t));
        }
        let c = subsample(&d, 10, 43);
        let differs = (0..10).any(|t| a.transaction_items(t) != c.transaction_items(t));
        assert!(differs, "different seeds give different samples");
        assert_eq!(subsample(&d, 100, 1).n_transactions(), 30, "clamped");
    }

    #[test]
    fn holdout_partitions_exactly() {
        let d = toy(20);
        let (e, h) = holdout_split(&d, 0.5, 7);
        assert_eq!(e.n_transactions() + h.n_transactions(), 20);
        assert_eq!(e.n_transactions(), 10);
        // Supports partition as well.
        let set = ItemSet::singleton(0);
        assert_eq!(
            e.support_count(&set) + h.support_count(&set),
            d.support_count(&set)
        );
    }

    #[test]
    fn extreme_fractions() {
        let d = toy(10);
        let (e, h) = holdout_split(&d, 1.0, 1);
        assert_eq!(e.n_transactions(), 10);
        assert_eq!(h.n_transactions(), 0);
        let (e, h) = holdout_split(&d, 0.0, 1);
        assert_eq!(e.n_transactions(), 0);
        assert_eq!(h.n_transactions(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn take_rejects_bad_index() {
        take_transactions(&toy(3), &[5]);
    }
}
