//! Descriptive statistics of two-view datasets: item-frequency skew and
//! transaction-length distributions.
//!
//! Used by the experiment reports to characterise the synthetic corpus
//! against the paper's Table 1 (densities alone hide the frequency skew
//! that drives the encoded sizes — see the encoding note in
//! EXPERIMENTS.md).

use crate::dataset::TwoViewDataset;
use crate::items::Side;

/// Frequency-distribution summary of one view.
#[derive(Clone, Debug)]
pub struct ViewStats {
    /// Number of items in the view.
    pub n_items: usize,
    /// Items that never occur.
    pub n_empty_items: usize,
    /// Minimum / median / maximum item support.
    pub support_min: usize,
    /// See `support_min`.
    pub support_median: usize,
    /// See `support_min`.
    pub support_max: usize,
    /// Gini coefficient of the item supports (0 = uniform, →1 = skewed).
    pub support_gini: f64,
    /// Mean items per transaction in this view.
    pub avg_transaction_len: f64,
    /// Maximum items per transaction.
    pub max_transaction_len: usize,
}

/// Computes the frequency statistics of one view.
pub fn view_stats(data: &TwoViewDataset, side: Side) -> ViewStats {
    let vocab = data.vocab();
    let mut supports: Vec<usize> = vocab.items_on(side).map(|i| data.support(i)).collect();
    supports.sort_unstable();
    let n_items = supports.len();
    let n_empty = supports.iter().filter(|&&s| s == 0).count();

    let n = data.n_transactions();
    let mut total_len = 0usize;
    let mut max_len = 0usize;
    for t in 0..n {
        let len = data.row(side, t).len();
        total_len += len;
        max_len = max_len.max(len);
    }

    ViewStats {
        n_items,
        n_empty_items: n_empty,
        support_min: supports.first().copied().unwrap_or(0),
        support_median: supports.get(n_items / 2).copied().unwrap_or(0),
        support_max: supports.last().copied().unwrap_or(0),
        support_gini: gini(&supports),
        avg_transaction_len: if n == 0 {
            0.0
        } else {
            total_len as f64 / n as f64
        },
        max_transaction_len: max_len,
    }
}

/// Gini coefficient of a sorted non-negative sample (0 when all equal).
fn gini(sorted: &[usize]) -> f64 {
    let n = sorted.len();
    let total: usize = sorted.iter().sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    // G = (2 Σ_i i·x_i) / (n Σ x) − (n+1)/n, with 1-based ranks over the
    // ascending-sorted sample.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::Vocabulary;

    #[test]
    fn uniform_supports_have_zero_gini() {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        let d = TwoViewDataset::from_transactions(vocab, &[vec![0, 1, 2, 3], vec![0, 1, 2, 3]]);
        let s = view_stats(&d, Side::Left);
        assert_eq!(s.n_items, 2);
        assert_eq!(s.support_min, 2);
        assert_eq!(s.support_max, 2);
        assert!(s.support_gini.abs() < 1e-12);
        assert!((s.avg_transaction_len - 2.0).abs() < 1e-12);
        assert_eq!(s.max_transaction_len, 2);
    }

    #[test]
    fn skewed_supports_have_positive_gini() {
        let vocab = Vocabulary::new(["rare", "common"], ["x"]);
        let mut txs = vec![vec![0, 1, 2]];
        for _ in 0..9 {
            txs.push(vec![1, 2]);
        }
        let d = TwoViewDataset::from_transactions(vocab, &txs);
        let s = view_stats(&d, Side::Left);
        assert_eq!(s.support_min, 1);
        assert_eq!(s.support_max, 10);
        assert!(s.support_gini > 0.3, "gini {}", s.support_gini);
    }

    #[test]
    fn empty_items_counted() {
        let vocab = Vocabulary::new(["a", "never"], ["x"]);
        let d = TwoViewDataset::from_transactions(vocab, &[vec![0, 2]]);
        let s = view_stats(&d, Side::Left);
        assert_eq!(s.n_empty_items, 1);
        assert_eq!(s.support_min, 0);
    }

    #[test]
    fn degenerate_empty_dataset() {
        let vocab = Vocabulary::new(["a"], ["x"]);
        let d = TwoViewDataset::from_transactions(vocab, &[]);
        let s = view_stats(&d, Side::Right);
        assert_eq!(s.avg_transaction_len, 0.0);
        assert_eq!(s.support_gini, 0.0);
    }

    #[test]
    fn gini_known_value() {
        // Two values {0, x}: G = 1/2 for any x>0 by the rank formula.
        assert!((gini(&[0, 10]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }
}
