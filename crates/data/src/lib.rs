//! # twoview-data
//!
//! Boolean **two-view dataset** substrate for the TRANSLATOR reproduction
//! (van Leeuwen & Galbrun, *Association Discovery in Two-View Data*).
//!
//! A two-view dataset is a bag of transactions `t = (t_L, t_R)` over two
//! disjoint item vocabularies `I_L` and `I_R`. This crate provides:
//!
//! * [`bitmap::Bitmap`] — dense bitsets used for transaction rows and as
//!   the dense half of every tidset;
//! * [`tidset::Tidset`] — adaptive sparse/dense/run-length transaction-id
//!   sets, the representation behind mining, the cover state and all seed
//!   caches;
//! * [`simd_merge`] — the SIMD / scalar sorted-merge kernels under the
//!   sparse tidset representation;
//! * [`items`] — items, views ([`items::Side`]), vocabularies and itemsets;
//! * [`dataset::TwoViewDataset`] — the immutable dataset with both a row
//!   store (for translation) and per-item tidsets (for mining);
//! * [`io`] — a plain-text `.2v` persistence format;
//! * [`synthetic`] — a generator that plants cross-view concepts into
//!   noise, with ground truth returned for testing;
//! * [`corpus`] — synthetic analogues of the paper's 14 evaluation
//!   datasets, matched on the statistics of the paper's Table 1.
//!
//! ## Quick example
//!
//! ```
//! use twoview_data::prelude::*;
//!
//! let vocab = Vocabulary::new(["rainy", "cold"], ["umbrella", "coat"]);
//! let data = TwoViewDataset::from_transactions(
//!     vocab,
//!     &[vec![0, 2], vec![0, 1, 2, 3], vec![1, 3]],
//! );
//! assert_eq!(data.n_transactions(), 3);
//! assert_eq!(data.support(0), 2); // "rainy"
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod codec;
pub mod corpus;
pub mod dataset;
pub mod discretize;
pub mod error;
pub mod io;
pub mod items;
pub mod multiview;
pub mod sample;
pub mod simd_merge;
pub mod split;
pub mod stats;
pub mod synthetic;
pub mod tidset;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use crate::bitmap::Bitmap;
    pub use crate::corpus::PaperDataset;
    pub use crate::dataset::TwoViewDataset;
    pub use crate::error::DataError;
    pub use crate::items::{ItemId, ItemSet, Side, Vocabulary};
    pub use crate::simd_merge::{kernel_path, set_kernel_path, KernelPath};
    pub use crate::synthetic::{
        generate, generate_with_vocab, StructureSpec, SyntheticDataset, SyntheticSpec,
    };
    pub use crate::tidset::{set_tidset_mode, tidset_mode, Tidset, TidsetMode};
}

pub use prelude::*;
