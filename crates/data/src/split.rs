//! Splitting single-view Boolean data into two views (paper §6):
//! "the attributes were split such that the items were evenly distributed
//! over two views having similar densities". Used for repository datasets
//! that are not naturally two-view (Abalone, Wine, Mammals, …).
//!
//! The splitter greedily assigns items, heaviest support first, to the view
//! whose accumulated support is currently smaller — the classic LPT
//! balancing heuristic — while keeping the item *counts* of the views
//! within one of each other.

use crate::dataset::TwoViewDataset;
use crate::error::DataError;
use crate::items::{ItemId, Vocabulary};

/// The assignment produced by [`balanced_split`].
#[derive(Clone, Debug)]
pub struct SplitPlan {
    /// Indices (into the input items) assigned to the left view.
    pub left: Vec<usize>,
    /// Indices assigned to the right view.
    pub right: Vec<usize>,
}

/// Computes a balanced two-view split of `n_items` items given their
/// supports: view sizes differ by at most one item and total supports (and
/// hence densities) are approximately equal.
pub fn balanced_split(supports: &[usize]) -> SplitPlan {
    let n_items = supports.len();
    let mut order: Vec<usize> = (0..n_items).collect();
    // Heaviest first; ties by index for determinism.
    order.sort_by(|&a, &b| supports[b].cmp(&supports[a]).then(a.cmp(&b)));

    let half_up = n_items.div_ceil(2);
    let (mut left, mut right) = (Vec::new(), Vec::new());
    let (mut load_l, mut load_r) = (0usize, 0usize);
    for idx in order {
        let go_left = if left.len() >= half_up {
            false
        } else if right.len() >= half_up {
            true
        } else {
            load_l <= load_r
        };
        if go_left {
            left.push(idx);
            load_l += supports[idx];
        } else {
            right.push(idx);
            load_r += supports[idx];
        }
    }
    left.sort_unstable();
    right.sort_unstable();
    SplitPlan { left, right }
}

/// Builds a two-view dataset from single-view Boolean data by splitting the
/// items with [`balanced_split`].
///
/// `item_names` are the original item names; `rows` hold, per object, the
/// indices of set items.
pub fn split_into_views(
    item_names: &[String],
    rows: &[Vec<usize>],
) -> Result<TwoViewDataset, DataError> {
    let n_items = item_names.len();
    for (t, row) in rows.iter().enumerate() {
        if let Some(&bad) = row.iter().find(|&&i| i >= n_items) {
            return Err(DataError::Format(format!(
                "row {t}: item index {bad} out of range {n_items}"
            )));
        }
    }
    let mut supports = vec![0usize; n_items];
    for row in rows {
        for &i in row {
            supports[i] += 1;
        }
    }
    let plan = balanced_split(&supports);

    // Map original item index -> global id in the new vocabulary.
    let mut global_of = vec![0 as ItemId; n_items];
    for (g, &orig) in plan.left.iter().enumerate() {
        global_of[orig] = g as ItemId;
    }
    for (g, &orig) in plan.right.iter().enumerate() {
        global_of[orig] = (plan.left.len() + g) as ItemId;
    }
    let vocab = Vocabulary::new(
        plan.left.iter().map(|&i| item_names[i].clone()),
        plan.right.iter().map(|&i| item_names[i].clone()),
    );
    let transactions: Vec<Vec<ItemId>> = rows
        .iter()
        .map(|row| row.iter().map(|&i| global_of[i]).collect())
        .collect();
    Ok(TwoViewDataset::from_transactions(vocab, &transactions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::Side;

    #[test]
    fn split_balances_counts_and_loads() {
        let supports = vec![100, 90, 10, 10, 5, 5];
        let plan = balanced_split(&supports);
        assert_eq!(plan.left.len(), 3);
        assert_eq!(plan.right.len(), 3);
        let load = |idx: &[usize]| idx.iter().map(|&i| supports[i]).sum::<usize>();
        let (ll, lr) = (load(&plan.left), load(&plan.right));
        assert!((ll as i64 - lr as i64).abs() <= 10, "loads {ll} vs {lr}");
    }

    #[test]
    fn odd_item_counts_differ_by_one() {
        let plan = balanced_split(&[5, 4, 3, 2, 1]);
        let (a, b) = (plan.left.len(), plan.right.len());
        assert_eq!(a + b, 5);
        assert!((a as i64 - b as i64).abs() <= 1);
    }

    #[test]
    fn split_into_views_preserves_data() {
        let names: Vec<String> = (0..6).map(|i| format!("it{i}")).collect();
        let rows = vec![
            vec![0, 1, 2],
            vec![0, 3],
            vec![4, 5],
            vec![0, 1, 2, 3, 4, 5],
        ];
        let data = split_into_views(&names, &rows).unwrap();
        assert_eq!(data.n_transactions(), 4);
        assert_eq!(data.vocab().n_items(), 6);
        // Every original (object, item) pair survives under its name.
        for (t, row) in rows.iter().enumerate() {
            for &i in row {
                let id = data.vocab().id_of(&names[i]).expect("name kept");
                assert!(data.transaction_contains(t, id), "lost ({t},{i})");
            }
            let total: usize = data.row(Side::Left, t).len() + data.row(Side::Right, t).len();
            assert_eq!(total, row.len(), "no extra items");
        }
    }

    #[test]
    fn densities_are_similar_after_split() {
        // Skewed supports: heavy items must spread over both views.
        let names: Vec<String> = (0..10).map(|i| format!("a{i}")).collect();
        let mut rows = Vec::new();
        for t in 0..50 {
            let mut row = Vec::new();
            for i in 0..10usize {
                // item i occurs with frequency proportional to 10-i
                if t % (i + 1) == 0 {
                    row.push(i);
                }
            }
            rows.push(row);
        }
        let data = split_into_views(&names, &rows).unwrap();
        let dl = data.density(Side::Left);
        let dr = data.density(Side::Right);
        assert!(
            (dl - dr).abs() < 0.1,
            "densities diverge: {dl:.3} vs {dr:.3}"
        );
    }

    #[test]
    fn rejects_out_of_range_items() {
        let names = vec!["a".to_string()];
        assert!(split_into_views(&names, &[vec![1]]).is_err());
    }

    #[test]
    fn deterministic() {
        let supports = vec![3, 3, 3, 3];
        assert_eq!(
            balanced_split(&supports).left,
            balanced_split(&supports).left
        );
    }
}
