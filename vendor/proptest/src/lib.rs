//! Offline stand-in for the crates.io `proptest` crate (API subset).
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the surface its property tests use: the [`proptest!`]
//! macro, [`prop_assert!`] / [`prop_assert_eq!`], range and tuple
//! [`Strategy`]s with [`Strategy::prop_map`], [`collection::vec`], and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest, acceptable for this workspace:
//! * inputs are drawn from a seeded PRNG per case (deterministic across
//!   runs) rather than from proptest's recursive value trees;
//! * no shrinking — a failing case panics with the case index so it can be
//!   replayed;
//! * `prop_assert*` panic immediately instead of returning `TestCaseError`.

#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Strategies: recipes producing random values of some type.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};

    /// A recipe for producing random values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps the produced values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T: Copy> Strategy for core::ops::Range<T>
    where
        core::ops::Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: Copy> Strategy for core::ops::RangeInclusive<T>
    where
        core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Produces vectors of values from `element`, with a length uniform in
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                0
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives `body` over `cases` deterministic random cases.
///
/// Used by the expansion of [`proptest!`]; not part of the public proptest
/// API.
#[doc(hidden)]
pub fn run_cases(test_name: &str, cases: u32, mut body: impl FnMut(&mut StdRng)) {
    use rand::SeedableRng;
    for case in 0..cases.max(1) {
        // Seed depends on the test name so sibling tests see distinct
        // streams, and on the case index so each case is replayable.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325 ^ u64::from(case).wrapping_mul(0x100_0000_01b3);
        for b in test_name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("proptest: {test_name} failed at case {case}/{cases}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Map, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running its body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config = $cfg;
            $crate::run_cases(stringify!($name), config.cases, |__proptest_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                )+
                $body
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..5, z in 1i32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_strategy_respects_len(v in collection::vec(0usize..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_and_prop_map_compose(
            pair in (0usize..4, 0usize..4).prop_map(|(a, b)| a * 10 + b),
        ) {
            prop_assert!(pair <= 33);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<usize> = Vec::new();
        crate::run_cases("det", 5, |rng| {
            first.push(crate::strategy::Strategy::generate(&(0usize..1000), rng));
        });
        let mut second: Vec<usize> = Vec::new();
        crate::run_cases("det", 5, |rng| {
            second.push(crate::strategy::Strategy::generate(&(0usize..1000), rng));
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }
}
