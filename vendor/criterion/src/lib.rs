//! Offline stand-in for the crates.io `criterion` crate (0.5 API subset).
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the API surface its bench targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it runs a warm-up iteration
//! followed by `sample_size` timed iterations and reports min / mean /
//! max wall-clock time per iteration in a `BENCH_*`-greppable line:
//!
//! ```text
//! BENCH group/id  mean 12.345 ms  (min 11.9 ms, max 13.1 ms, n=10)
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name and an
/// optional parameter rendered as `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (n, Some(p)) => write!(f, "{n}/{p}"),
            (n, None) => write!(f, "{n}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Passed to the measured closure; drives the timing loop.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/allocations
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.recorded.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            recorded: Vec::new(),
        };
        f(&mut b);
        self.report(&id, &b.recorded);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            recorded: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id, &b.recorded);
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("BENCH {}/{id}  (no samples recorded)", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        println!(
            "BENCH {}/{id}  mean {}  (min {}, max {}, n={})",
            self.name,
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver, handed to every target of a
/// [`criterion_group!`].
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("select", 25).to_string(), "select/25");
        assert_eq!(BenchmarkId::from_parameter("House").to_string(), "House");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn group_runs_closures_expected_number_of_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut calls = 0usize;
        g.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        g.finish();
        // One warm-up + five samples.
        assert_eq!(calls, 6);
    }
}
