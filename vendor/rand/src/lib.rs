//! Offline stand-in for the crates.io `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the exact API surface it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_bool`],
//! [`Rng::gen_range`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — a
//! high-quality, deterministic PRNG. Its stream differs from the real
//! `rand::rngs::StdRng` (ChaCha12), which is fine: nothing in the workspace
//! depends on the concrete stream, only on determinism per seed.

#![warn(missing_docs)]

/// A source of 64-bit random words. Object-safe core trait.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's "standard" distribution
/// (`f64`/`f32` in `[0, 1)`, integers over their whole range).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T` (the 0.8
/// `SampleRange`-shaped trait, taking the range by value).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, SplitMix64-seeded.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions, mirroring `rand::seq::SliceRandom` (subset).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
